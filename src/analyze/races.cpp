//===- analyze/races.cpp --------------------------------------*- C++ -*-===//

#include "analyze/races.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

using namespace latte;
using namespace latte::analyze;

namespace {

//===----------------------------------------------------------------------===//
// Feasibility of sum-of-terms hitting a window
//===----------------------------------------------------------------------===//
//
// The element-distance between two access instances decomposes into a sum of
// independent terms: one per parallel dimension, one per footprint level.
// Each term contributes either an arithmetic progression {S*k : k in
// [KMin, KMax]} (optionally excluding k == 0, which encodes "the two
// iterations differ in this dimension") or an explicit value list. The two
// footprints overlap iff the sum can land in the open window
// (-WidthB, WidthA); we decide that with a DFS over terms, pruning with
// suffix min/max sums and narrowing each progression to the k-range that
// can still reach the window.

enum class Feas { No, Yes, Budget };

struct Term {
  int64_t S = 0; ///< progression stride
  int64_t KMin = 0;
  int64_t KMax = 0;
  bool ExcludeZero = false;        ///< k == 0 not allowed (k=0 value may
                                   ///< still arise from another k when S==0)
  std::vector<int64_t> Explicit;   ///< when non-empty, overrides the
                                   ///< progression
  int64_t MinV = 0, MaxV = 0;

  bool isExplicit() const { return !Explicit.empty(); }

  /// Computes MinV/MaxV; returns false when the term has no admissible
  /// value at all (empty iteration range).
  bool finalize() {
    if (isExplicit()) {
      MinV = *std::min_element(Explicit.begin(), Explicit.end());
      MaxV = *std::max_element(Explicit.begin(), Explicit.end());
      return true;
    }
    if (ExcludeZero) {
      // Zero at a boundary just shrinks the contiguous range.
      if (KMin == 0 && KMax == 0)
        return false;
      if (KMin == 0)
        KMin = 1, ExcludeZero = false;
      else if (KMax == 0)
        KMax = -1, ExcludeZero = false;
    }
    if (KMin > KMax)
      return false;
    MinV = std::min(S * KMin, S * KMax);
    MaxV = std::max(S * KMin, S * KMax);
    return true;
  }
};

int64_t floorDiv(int64_t A, int64_t B) {
  int64_t Q = A / B, R = A % B;
  return R != 0 && ((R < 0) != (B < 0)) ? Q - 1 : Q;
}
int64_t ceilDiv(int64_t A, int64_t B) { return -floorDiv(-A, B); }

class Searcher {
public:
  Searcher(std::vector<Term> Terms, int64_t Lo, int64_t Hi)
      : Terms(std::move(Terms)), Lo(Lo), Hi(Hi) {}

  Feas run() {
    // Wide-span terms first: they prune hardest.
    std::sort(Terms.begin(), Terms.end(), [](const Term &A, const Term &B) {
      return (A.MaxV - A.MinV) > (B.MaxV - B.MinV);
    });
    SufMin.assign(Terms.size() + 1, 0);
    SufMax.assign(Terms.size() + 1, 0);
    for (size_t I = Terms.size(); I-- > 0;) {
      SufMin[I] = SufMin[I + 1] + Terms[I].MinV;
      SufMax[I] = SufMax[I + 1] + Terms[I].MaxV;
    }
    return dfs(0, 0);
  }

private:
  Feas dfs(size_t I, int64_t Cur) {
    if (--Budget <= 0)
      return Feas::Budget;
    if (Cur + SufMax[I] < Lo || Cur + SufMin[I] > Hi)
      return Feas::No;
    if (I == Terms.size())
      return Feas::Yes; // window check is the prune above
    const Term &T = Terms[I];
    // Values that can still reach the window given the remaining terms.
    int64_t VLo = Lo - Cur - SufMax[I + 1];
    int64_t VHi = Hi - Cur - SufMin[I + 1];
    bool SawBudget = false;
    auto Step = [&](int64_t V) -> bool {
      Feas F = dfs(I + 1, Cur + V);
      if (F == Feas::Budget)
        SawBudget = true;
      return F == Feas::Yes;
    };
    if (T.isExplicit()) {
      for (int64_t V : T.Explicit)
        if (V >= VLo && V <= VHi && Step(V))
          return Feas::Yes;
      return SawBudget ? Feas::Budget : Feas::No;
    }
    if (T.S == 0) {
      // Every k yields value 0 (any non-excluded k exists after finalize()).
      if (0 >= VLo && 0 <= VHi && Step(0))
        return Feas::Yes;
      return SawBudget ? Feas::Budget : Feas::No;
    }
    int64_t KLo = T.S > 0 ? ceilDiv(VLo, T.S) : ceilDiv(VHi, T.S);
    int64_t KHi = T.S > 0 ? floorDiv(VHi, T.S) : floorDiv(VLo, T.S);
    KLo = std::max(KLo, T.KMin);
    KHi = std::min(KHi, T.KMax);
    for (int64_t K = KLo; K <= KHi; ++K) {
      if (T.ExcludeZero && K == 0)
        continue;
      if (Step(T.S * K))
        return Feas::Yes;
    }
    return SawBudget ? Feas::Budget : Feas::No;
  }

  std::vector<Term> Terms;
  int64_t Lo, Hi;
  std::vector<int64_t> SufMin, SufMax;
  int64_t Budget = 1 << 22;
};

//===----------------------------------------------------------------------===//
// Pairwise overlap across distinct iterations
//===----------------------------------------------------------------------===//

struct ConflictResult {
  bool Conflict = false;
  bool Approx = false;
};

constexpr int64_t kExplicitPairBudget = 4096;

/// Can accesses A (at iteration V1) and B (at iteration V2) with V1 != V2
/// touch a common element? Distance D = addrB(V2) - addrA(V1) must satisfy
/// -WidthB < D < WidthA for some choice of levels and iterations.
ConflictResult overlapDistinct(const Access &A, const Access &B,
                               const std::vector<ParallelDim> &Dims) {
  ConflictResult R;
  R.Approx = !A.Fp.Exact || !B.Fp.Exact;
  int64_t WA = A.Fp.Width, WB = B.Fp.Width;
  if (WA <= 0 || WB <= 0 || Dims.empty())
    return R;

  // Terms independent of which dimension witnesses distinctness.
  std::vector<Term> BaseTerms;
  int64_t ConstD = B.Fp.Base.Const - A.Fp.Base.Const;
  for (const FootprintLevel &L : A.Fp.Levels) {
    Term T;
    T.S = -L.Stride;
    T.KMax = L.Extent - 1;
    BaseTerms.push_back(T);
  }
  for (const FootprintLevel &L : B.Fp.Levels) {
    Term T;
    T.S = L.Stride;
    T.KMax = L.Extent - 1;
    BaseTerms.push_back(T);
  }
  // Any base coefficient outside the parallel dimensions means the
  // footprint was not fully folded — be conservative.
  auto HasUnknownCoeff = [&](const AffineExpr &E) {
    for (const auto &[Var, C] : E.Coeffs) {
      (void)C;
      if (std::none_of(Dims.begin(), Dims.end(),
                       [&](const ParallelDim &D) { return D.Var == Var; }))
        return true;
    }
    return false;
  };
  if (!A.Fp.Base.Affine || !B.Fp.Base.Affine || HasUnknownCoeff(A.Fp.Base) ||
      HasUnknownCoeff(B.Fp.Base)) {
    R.Conflict = true;
    R.Approx = true;
    return R;
  }

  /// Appends the contribution of dimension \p D, either letting both
  /// iterations range freely or constraining them to differ.
  auto AddDimTerms = [&](std::vector<Term> &Terms, int64_t &Const,
                         const ParallelDim &D, bool Constrained,
                         bool &Approx) {
    int64_t CA = A.Fp.Base.coeff(D.Var), CB = B.Fp.Base.coeff(D.Var);
    if (!Constrained) {
      Const += (CB - CA) * D.Lo;
      if (CB != 0) {
        Term T;
        T.S = CB;
        T.KMax = D.Extent - 1;
        Terms.push_back(T);
      }
      if (CA != 0) {
        Term T;
        T.S = -CA;
        T.KMax = D.Extent - 1;
        Terms.push_back(T);
      }
      return;
    }
    if (CA == CB) {
      // D contribution: c * (v2 - v1), v2 != v1.
      Term T;
      T.S = CA;
      T.KMin = -(D.Extent - 1);
      T.KMax = D.Extent - 1;
      T.ExcludeZero = true;
      Terms.push_back(T);
      return;
    }
    if (D.Extent * D.Extent <= kExplicitPairBudget) {
      Term T;
      for (int64_t V1 = D.Lo; V1 < D.Lo + D.Extent; ++V1)
        for (int64_t V2 = D.Lo; V2 < D.Lo + D.Extent; ++V2)
          if (V1 != V2)
            T.Explicit.push_back(CB * V2 - CA * V1);
      if (T.Explicit.empty())
        return; // Extent 1: no distinct pair (caller filters this)
      Terms.push_back(T);
      return;
    }
    // Superset: drop the v1 != v2 constraint for this dimension.
    Approx = true;
    Const += (CB - CA) * D.Lo;
    Term T1;
    T1.S = CB;
    T1.KMax = D.Extent - 1;
    Terms.push_back(T1);
    Term T2;
    T2.S = -CA;
    T2.KMax = D.Extent - 1;
    Terms.push_back(T2);
  };

  auto Feasible = [&](std::vector<Term> Terms, int64_t Const,
                      bool &Approx) -> bool {
    for (Term &T : Terms)
      if (!T.finalize())
        return false;
    Searcher S(std::move(Terms), -WB + 1 - Const, WA - 1 - Const);
    Feas F = S.run();
    if (F == Feas::Budget) {
      Approx = true;
      return true; // cannot prove absence
    }
    return F == Feas::Yes;
  };

  // If some dimension is address-irrelevant to both accesses (and has at
  // least two iterations), any overlap extends to a distinct-iteration
  // overlap for free.
  bool FreeDistinct =
      std::any_of(Dims.begin(), Dims.end(), [&](const ParallelDim &D) {
        return D.Extent >= 2 && A.Fp.Base.coeff(D.Var) == 0 &&
               B.Fp.Base.coeff(D.Var) == 0;
      });
  if (FreeDistinct) {
    std::vector<Term> Terms = BaseTerms;
    int64_t Const = ConstD;
    bool Approx = R.Approx;
    for (const ParallelDim &D : Dims)
      AddDimTerms(Terms, Const, D, /*Constrained=*/false, Approx);
    if (Feasible(std::move(Terms), Const, Approx)) {
      R.Conflict = true;
      R.Approx = Approx;
    }
    return R;
  }

  // Otherwise some dimension must witness v1 != v2; try each in turn.
  for (const ParallelDim &W : Dims) {
    if (W.Extent < 2)
      continue;
    std::vector<Term> Terms = BaseTerms;
    int64_t Const = ConstD;
    bool Approx = R.Approx;
    AddDimTerms(Terms, Const, W, /*Constrained=*/true, Approx);
    for (const ParallelDim &D : Dims)
      if (D.Var != W.Var)
        AddDimTerms(Terms, Const, D, /*Constrained=*/false, Approx);
    if (Feasible(std::move(Terms), Const, Approx)) {
      R.Conflict = true;
      R.Approx = Approx;
      return R;
    }
  }
  return R;
}

std::string dimsString(const std::vector<ParallelDim> &Dims) {
  std::ostringstream OS;
  OS << "{";
  for (size_t I = 0; I < Dims.size(); ++I) {
    if (I)
      OS << ", ";
    OS << Dims[I].Var << " in [" << Dims[I].Lo << ", "
       << Dims[I].Lo + Dims[I].Extent << ")";
  }
  OS << "}";
  return OS.str();
}

} // namespace

void analyze::detectRaces(const UnitEffects &UE, bool IsBackward,
                          const std::string &TaskLabel,
                          DiagnosticReport &Diags,
                          const std::set<std::string> *RotatedRoots) {
  if (UE.Dims.empty())
    return;
  bool AnyDistinct = std::any_of(
      UE.Dims.begin(), UE.Dims.end(),
      [](const ParallelDim &D) { return D.Extent >= 2; });
  if (!AnyDistinct)
    return; // a single iteration point cannot race with itself

  for (const auto &[Buffer, Accesses] : UE.Effects.Buffers) {
    if (RotatedRoots && RotatedRoots->count(Buffer)) {
      // Slice-rotated pool: distinct batch iterations mapping to the same
      // slice alias by construction. The executor serializes same-slice
      // items (slice-grouped schedule) and plan.subunit.* cross-validates
      // the rotated footprints, so pairwise intersection would only
      // re-report the intended aliasing.
      Diagnostic &D = Diags.note(
          "race.rotated-slice",
          "slice-rotated buffer: same-slice iterations serialized by the "
          "engine's slice-grouped schedule (see compiler/rotate.h)");
      D.Task = TaskLabel;
      D.Buffer = Buffer;
      continue;
    }
    bool AnyWrite =
        std::any_of(Accesses.begin(), Accesses.end(),
                    [](const Access &A) { return A.Write; });
    if (!AnyWrite)
      continue;
    for (size_t I = 0; I < Accesses.size(); ++I) {
      for (size_t J = I; J < Accesses.size(); ++J) {
        const Access &A = Accesses[I];
        const Access &B = Accesses[J];
        if (!A.Write && !B.Write)
          continue;
        ConflictResult C = overlapDistinct(A, B, UE.Dims);
        if (C.Conflict && (A.HasBound || B.HasBound)) {
          // Inexact window footprints overhang the region they can really
          // touch; the guaranteed bound regions must also meet across
          // distinct iterations for the conflict to be possible.
          Access BA = A;
          if (A.HasBound)
            BA.Fp = A.Bound;
          Access BB = B;
          if (B.HasBound)
            BB.Fp = B.Bound;
          if (!overlapDistinct(BA, BB, UE.Dims).Conflict)
            C.Conflict = false;
        }
        if (!C.Conflict)
          continue;
        bool BothAccum = (!A.Write || A.Accumulating) &&
                         (!B.Write || B.Accumulating) &&
                         (A.Write && B.Write); // read-vs-accum is not lossy
        std::ostringstream Msg;
        Msg << "iterations of " << dimsString(UE.Dims)
            << " may touch the same element: " << A.Detail << " ["
            << A.Fp.str() << "] vs " << B.Detail << " [" << B.Fp.str()
            << "]";
        Diagnostic *D;
        if (IsBackward && BothAccum) {
          D = &Diags.note("race.lossy-accumulation",
                          "declared lossy '+=' accumulation race (§6, "
                          "LossyGradients): " +
                              Msg.str());
        } else if (C.Approx) {
          D = &Diags.warning("race.possible",
                             "possible race (conservative footprint): " +
                                 Msg.str());
        } else if (A.Write && B.Write) {
          D = &Diags.error("race.write-write",
                           "write-write race: " + Msg.str());
        } else {
          D = &Diags.error("race.read-write",
                           "read-write race: " + Msg.str());
        }
        D->Task = TaskLabel;
        D->Buffer = Buffer;
      }
    }
  }
}
