//===- analyze/effects.h - Buffer-effect analysis --------------*- C++ -*-===//
///
/// \file
/// Computes per-task may-read/may-write sets over the assembled Program IR.
/// Every Load/Store/KernelCall is summarized as an Access on its
/// alias-resolved root buffer with a *footprint*: an affine base over the
/// task's parallel loop variables plus a set of (extent, stride) levels for
/// the enclosed sequential loops and a contiguous trailing width. The
/// footprint abstraction is exact for everything the Latte compiler emits
/// (batch offsets, tile row/column splits, strided channel walks); data-
/// dependent accesses (gather/scatter index tables) are widened to a
/// conservative superset and marked inexact.
///
/// The race detector (analyze/races.h) intersects these footprints across
/// distinct iterations of the parallel dimensions; the verifier
/// (analyze/verifier.h) bounds-checks them against buffer extents. The
/// per-dimension index summaries reuse the dependence-distance ingredients
/// of compiler/analysis.cpp at the IR level rather than the connection
/// level, so they hold after every optimization pass.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_ANALYZE_EFFECTS_H
#define LATTE_ANALYZE_EFFECTS_H

#include "analyze/diagnostics.h"
#include "compiler/program.h"
#include "ir/stmt.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace latte {
namespace analyze {

/// Linear integer form Const + sum(Coeffs[v] * v). Affine=false means the
/// expression could not be summarized (min/max/div of non-constants, loads
/// inside indices); consumers must widen conservatively.
struct AffineExpr {
  std::map<std::string, int64_t> Coeffs; ///< ordered => deterministic dumps
  int64_t Const = 0;
  bool Affine = true;

  static AffineExpr constant(int64_t V) {
    AffineExpr A;
    A.Const = V;
    return A;
  }
  static AffineExpr unknown() {
    AffineExpr A;
    A.Affine = false;
    return A;
  }

  int64_t coeff(const std::string &Var) const {
    auto It = Coeffs.find(Var);
    return It == Coeffs.end() ? 0 : It->second;
  }
  /// this += Scale * Other (propagates non-affineness).
  void accumulate(const AffineExpr &Other, int64_t Scale);
  bool isConstant() const { return Affine && Coeffs.empty(); }

  /// "8*n + 64*t0 + 12" (terms in variable order, constant last).
  std::string str() const;
};

/// Extracts the affine form of an integer index expression. Supported:
/// IntConst, Var, Add, Sub, Mul-by-constant; anything else yields unknown.
AffineExpr affineOf(const ir::Expr *E);

/// One sequential-loop dimension of a footprint: the access repeats Extent
/// times, Stride elements apart. Strides are normalized non-negative.
struct FootprintLevel {
  int64_t Extent = 1;
  int64_t Stride = 0;
};

/// The element region an access may touch:
///   Base(parallel vars) + sum_i Stride_i*k_i (k_i in [0, Extent_i))
///                       + [0, Width)
/// Base coefficients only mention the task's parallel dimensions; every
/// sequential loop was folded into Levels. Exact=false marks conservative
/// supersets (index-table accesses, padded/clipped window kernels, or
/// non-affine indices widened to the whole buffer).
struct Footprint {
  AffineExpr Base;
  std::vector<FootprintLevel> Levels;
  int64_t Width = 1;
  bool Exact = true;

  /// Largest base-relative end offset: sum(Stride*(Extent-1)) + Width.
  int64_t spanEnd() const;

  /// Sorts levels by stride and merges a level into Width when the level's
  /// stride equals the current width (contiguous coalescing).
  void canonicalize();

  std::string str() const;
};

/// One summarized access to a (root) buffer.
struct Access {
  bool Write = false;
  bool Read = false;
  /// The write combines with the previous value through a commutative
  /// accumulation (+=); these are the §6 lossy-gradient candidates.
  bool Accumulating = false;
  Footprint Fp;
  /// For inexact footprints that overhang their true region (padded window
  /// kernels: the clamped reads never leave the item slice, but the affine
  /// window model extends Pad rows beyond it), a second footprint that is
  /// GUARANTEED to contain every touched element. The race detector
  /// requires bound overlap in addition to footprint overlap.
  bool HasBound = false;
  Footprint Bound;
  std::string Detail; ///< printable origin: "store w_grad[...]", "Sgemm(...)"
};

/// Effects of one task unit, keyed by alias-resolved root buffer name.
/// Int32 index/mask buffers are keyed with an "int:" prefix so float and
/// integer address spaces never appear to overlap.
struct EffectSet {
  std::map<std::string, std::vector<Access>> Buffers;

  void add(const std::string &Root, Access A) {
    Buffers[Root].push_back(std::move(A));
  }
};

/// One parallel dimension of a task unit (the batch loop variable, plus the
/// tile variable when the loop is collapse(2)).
struct ParallelDim {
  std::string Var;
  int64_t Lo = 0; ///< loop lower bound (constant in assembled programs)
  int64_t Extent = 0;
};

/// Resolves buffer metadata against a Program: alias roots, strides,
/// element counts, int-table value ranges.
class BufferTable {
public:
  explicit BufferTable(const compiler::Program &Prog);

  struct FloatInfo {
    std::string Root; ///< alias-resolved owning buffer
    int rank() const { return static_cast<int>(Strides.size()); }
    std::vector<int64_t> Strides;
    int64_t Count = 0;
    compiler::BufferRole Role = compiler::BufferRole::Scratch;
  };
  struct IntInfo {
    int64_t Count = 0;
    /// [MinEntry, MaxEntry] over static table entries (skipping the -1
    /// padding sentinel); meaningful when HasEntries.
    bool HasEntries = false;
    int64_t MinEntry = 0;
    int64_t MaxEntry = 0;
  };

  const FloatInfo *floatInfo(const std::string &Name) const;
  const IntInfo *intInfo(const std::string &Name) const;
  const compiler::Program &program() const { return Prog; }

private:
  const compiler::Program &Prog;
  std::map<std::string, FloatInfo> Floats;
  std::map<std::string, IntInfo> Ints;
};

/// Effects and parallel structure of one top-level task unit.
struct UnitEffects {
  EffectSet Effects;
  std::vector<ParallelDim> Dims; ///< empty when the unit is sequential
  bool Collapsed = false;        ///< batch x tile collapse(2)
};

/// Summarizes one top-level unit of an assembled program. \p Diags (when
/// non-null) receives structural problems found along the way (unknown
/// buffers, non-integer indices); the effect analysis itself never fails —
/// it widens to conservative footprints instead.
UnitEffects collectUnitEffects(const ir::Stmt *Unit, const BufferTable &Bufs,
                               DiagnosticReport *Diags);

/// Sub-unit (per-batch-item) classification of one buffer inside a batch
/// loop. ItemPrivate: batch iteration n provably touches only its own item
/// slice [n*S, (n+1)*S) where S is the buffer's leading stride. ItemShared:
/// footprints are affine but cross item slices or are item-invariant
/// (weights, reductions, padded scatters). Inexact: at least one access
/// widened to a conservative superset with no exact bound region, so
/// privacy cannot be decided.
enum class SliceClass { ItemPrivate, ItemShared, Inexact };

const char *sliceClassName(SliceClass C);

struct SliceInfo {
  SliceClass Class = SliceClass::Inexact;
  /// Item stride S the privacy proof used (root Strides[0]).
  int64_t ItemElems = 0;
  /// The unit's first access to this root is an exact covering overwrite of
  /// the item slice (write, no read, no accumulation, contiguous [0, S)
  /// coverage): the buffer carries nothing in across items, so a rotated
  /// slice needs no cross-item initialization.
  bool ItemFresh = false;
  /// First access that demoted the class below ItemPrivate (empty for
  /// ItemPrivate buffers).
  std::string Why;
};

/// Sub-unit (per-batch-item) effect analysis over one top-level unit: maps
/// every float root referenced under the unit's batch loop to its
/// SliceClass. Returns an empty map when the unit is not a ForStmt with
/// constant extent > 1. The unit is re-analyzed with the batch loop forced
/// parallel so per-item footprints exist even at lattice points where the
/// parallelization pass left the loop unannotated (the collector would
/// otherwise fold the batch variable into a sequential level).
std::map<std::string, SliceInfo> classifySubUnit(const ir::Stmt *Unit,
                                                 const BufferTable &Bufs);

/// Human-readable per-buffer classification table (deterministic order) for
/// latte-lint --dump-subunit.
std::string dumpSubUnit(const std::map<std::string, SliceInfo> &Classes);

/// Human-readable effect-set dump (deterministic order), one access per
/// line, for latte-lint --dump-effects.
std::string dumpEffects(const EffectSet &Effects);

/// Runtime argument layout of a kernel (mirrors engine::Executor::execKernel,
/// which is authoritative; stmt.h's doc comments predate the expr-arg split).
struct KernelSignature {
  int NumBufs = 0;
  int NumInts = 0;
  int NumExprs = 0;
  int NumFloats = 0;
};

KernelSignature kernelSignature(ir::KernelKind K);

/// True when buffer argument \p BufIdx of kernel \p K names an int32 buffer
/// (gather/scatter index tables, max-pool argmax masks).
bool kernelBufArgIsInt(ir::KernelKind K, size_t BufIdx);

} // namespace analyze
} // namespace latte

#endif // LATTE_ANALYZE_EFFECTS_H
