//===- analyze/races.h - Static race detection ------------------*- C++ -*-===//
///
/// \file
/// Intersects the buffer-effect footprints of a Parallelize-annotated task
/// unit across *distinct* iterations of its collapsed batch×tile space. Two
/// accesses conflict when some pair of different iteration points touches a
/// common element and at least one access writes. Conflicts are reported as
/// structured diagnostics:
///
///   - `race.write-write` / `race.read-write` (Error): a proven conflict
///     between exact footprints — the parallel schedule is unsound.
///   - `race.possible` (Warning): the conflict involves a conservative
///     (inexact) footprint or the feasibility search exceeded its budget,
///     so the analysis cannot prove the unit race-free.
///   - `race.lossy-accumulation` (Note): every conflicting access is a
///     commutative `+=` accumulation in a backward program — the declared
///     §6 lossy-gradient path. Flagged, not silenced: the engine only runs
///     these loops in parallel when `LossyGradients` is set.
///   - `race.rotated-slice` (Note): the buffer is a slice-rotated root
///     (compiler/rotate.h). Distinct batch iterations that map to the same
///     pool slice do alias, but the executor's slice-grouped schedule
///     serializes them; the verifier's plan.subunit.* checks validate the
///     rotated footprints, so pairwise intersection is skipped here.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_ANALYZE_RACES_H
#define LATTE_ANALYZE_RACES_H

#include "analyze/diagnostics.h"
#include "analyze/effects.h"

#include <set>
#include <string>

namespace latte {
namespace analyze {

/// Checks one parallel task unit's effects for cross-iteration conflicts and
/// appends race.* diagnostics to \p Diags. \p IsBackward selects the lossy
/// accumulation whitelist; \p TaskLabel tags the diagnostics. A unit with no
/// parallel dimensions never conflicts with itself. \p RotatedRoots (may be
/// null) names the unit's slice-rotated buffers, whose cross-iteration
/// aliasing is intentional and scheduled around (see race.rotated-slice).
void detectRaces(const UnitEffects &UE, bool IsBackward,
                 const std::string &TaskLabel, DiagnosticReport &Diags,
                 const std::set<std::string> *RotatedRoots = nullptr);

} // namespace analyze
} // namespace latte

#endif // LATTE_ANALYZE_RACES_H
