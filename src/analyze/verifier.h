//===- analyze/verifier.h - Static program verifier -------------*- C++ -*-===//
///
/// \file
/// The static counterpart of the dynamic optimization-lattice oracle
/// (verify/lattice.h): proves structural invariants of an assembled
/// compiler::Program without running it, in the spirit of LLVM's
/// -verify-each pass verification.
///
/// Checked invariants (diagnostic codes in parentheses):
///   - buffer table sanity: duplicate names, positive shapes, alias chains
///     resolve acyclically to a same-sized root (buffer.duplicate,
///     buffer.shape, buffer.alias)
///   - parameter bindings reference existing Param/ParamGrad buffers of
///     equal element count (program.param-bindings)
///   - task labels stay parallel to the assembled units, and barrier units
///     pair with "barrier:" labels — the release-mode promotion of the
///     assert in compiler/passes.cpp (program.task-labels)
///   - fusion groups in the report correspond to an assembled task
///     (program.fusion-groups)
///   - loop-nest well-formedness: non-negative extents, collapse(2) only on
///     a parallel batch loop whose body is a single tiled loop (ir.loop)
///   - defined-before-use of loop variables and float locals (ir.var-use),
///     integer-evaluable index/bound expressions (ir.index-type)
///   - loads/stores/kernels reference known buffers of the right kind with
///     matching index rank (ir.unknown-buffer, ir.index-rank)
///   - kernel calls match the runtime argument layout (kernel.arity), and
///     the stateful dropout RNG never runs inside a parallel loop
///     (kernel.rng-in-parallel)
///   - barriers only appear between top-level units (ir.barrier-placement)
///   - every exact effect footprint stays inside its buffer (ir.bounds)
///   - parallel loops are race-free modulo the declared §6 lossy
///     accumulation (race.* — see analyze/races.h)
///   - the compiler's arena memory plan, when present: every alias root is
///     placed (plan.offset-missing) with an aligned (plan.align),
///     in-bounds, extent-covering byte range (plan.bounds); no two
///     simultaneously-live roots share bytes (plan.overlap); and — cross-
///     checked against analyze::effects — no unit references a root
///     outside its recorded live range (plan.lifetime, plan.units)
///   - the recompute ledger: every cloned gather sits before its backward
///     consumer and is the first backward reference to the buffer it
///     redefines (plan.recompute.placement), writes nothing else
///     (plan.recompute.purity), and contains only whitelisted pure gather
///     kernels, never RNG/stateful ones (plan.recompute.stateful)
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_ANALYZE_VERIFIER_H
#define LATTE_ANALYZE_VERIFIER_H

#include "analyze/diagnostics.h"
#include "compiler/program.h"

namespace latte {
namespace analyze {

struct VerifyOptions {
  bool CheckBounds = true; ///< footprint-vs-buffer-extent checking
  bool CheckRaces = true;  ///< cross-iteration conflict detection
};

/// Verifies a compiled program. Never mutates it and never aborts; the
/// caller decides what to do with Errors (compiler::compile aborts under
/// CompileOptions::VerifyEach, latte-lint exits non-zero).
DiagnosticReport verifyProgram(const compiler::Program &Prog,
                               const VerifyOptions &Opts = {});

} // namespace analyze
} // namespace latte

#endif // LATTE_ANALYZE_VERIFIER_H
