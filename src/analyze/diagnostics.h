//===- analyze/diagnostics.h - Structured analysis diagnostics -*- C++ -*-===//
///
/// \file
/// Diagnostics emitted by the static analysis subsystem (IR verifier,
/// buffer-effect analysis, race detector). A Diagnostic carries a stable
/// dotted code ("ir.var-use", "race.write-write", ...) that tests and the
/// latte-lint CLI key on, plus enough context to localize the problem: the
/// task label the compiler attached to the offending unit, the buffer
/// involved, and a printed IR snippet (the printer's output is
/// deterministic, so snippets are stable across runs).
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_ANALYZE_DIAGNOSTICS_H
#define LATTE_ANALYZE_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace latte {
namespace analyze {

/// Notes record declared-but-noteworthy facts (e.g. the §6 lossy gradient
/// accumulation races); Warnings are possible problems the analysis could
/// not prove either way (conservative footprints); Errors are invariant
/// violations that would miscompute or crash.
enum class Severity { Note, Warning, Error };

const char *severityName(Severity S);

struct Diagnostic {
  Severity Sev = Severity::Error;
  std::string Code;    ///< stable dotted identifier, e.g. "ir.index-rank"
  std::string Message; ///< human-readable explanation
  std::string Task;    ///< task label of the unit, when known
  std::string Buffer;  ///< buffer involved, when relevant
  std::string Snippet; ///< printed IR of the offending statement/expression

  /// "error [ir.index-rank] task 'batch[conv1]' buffer 'conv1_vals': ..."
  std::string render() const;
};

/// Accumulates diagnostics in emission order (which is deterministic: the
/// verifier walks buffers and units in program order).
class DiagnosticReport {
public:
  Diagnostic &add(Severity Sev, std::string Code, std::string Message);
  Diagnostic &error(std::string Code, std::string Message) {
    return add(Severity::Error, std::move(Code), std::move(Message));
  }
  Diagnostic &warning(std::string Code, std::string Message) {
    return add(Severity::Warning, std::move(Code), std::move(Message));
  }
  Diagnostic &note(std::string Code, std::string Message) {
    return add(Severity::Note, std::move(Code), std::move(Message));
  }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  int count(Severity S) const;
  int errors() const { return count(Severity::Error); }
  int warnings() const { return count(Severity::Warning); }
  int notes() const { return count(Severity::Note); }
  bool hasErrors() const { return errors() > 0; }
  bool empty() const { return Diags.empty(); }

  /// True when any diagnostic (of any severity) carries \p Code.
  bool hasCode(const std::string &Code) const;

  /// One rendered line per diagnostic plus a summary tail line.
  std::string render() const;

  /// Appends all of \p Other's diagnostics.
  void merge(DiagnosticReport Other);

  /// Sets \p Task on every diagnostic that does not carry a task label yet
  /// (used to attribute sub-analysis diagnostics to their unit).
  void tagTask(const std::string &Task);

private:
  std::vector<Diagnostic> Diags;
};

} // namespace analyze
} // namespace latte

#endif // LATTE_ANALYZE_DIAGNOSTICS_H
