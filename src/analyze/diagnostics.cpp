//===- analyze/diagnostics.cpp --------------------------------*- C++ -*-===//

#include "analyze/diagnostics.h"

#include "support/error.h"

#include <sstream>

using namespace latte;
using namespace latte::analyze;

const char *analyze::severityName(Severity S) {
  switch (S) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  latteUnreachable("unknown severity");
}

std::string Diagnostic::render() const {
  std::ostringstream OS;
  OS << severityName(Sev) << " [" << Code << "]";
  if (!Task.empty())
    OS << " task '" << Task << "'";
  if (!Buffer.empty())
    OS << " buffer '" << Buffer << "'";
  OS << ": " << Message;
  if (!Snippet.empty()) {
    // Indent the snippet under the diagnostic; snippets may span lines.
    OS << "\n    | ";
    for (char C : Snippet) {
      if (C == '\n')
        OS << "\n    | ";
      else
        OS << C;
    }
  }
  return OS.str();
}

Diagnostic &DiagnosticReport::add(Severity Sev, std::string Code,
                                  std::string Message) {
  Diagnostic D;
  D.Sev = Sev;
  D.Code = std::move(Code);
  D.Message = std::move(Message);
  Diags.push_back(std::move(D));
  return Diags.back();
}

int DiagnosticReport::count(Severity S) const {
  int N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Sev == S ? 1 : 0;
  return N;
}

bool DiagnosticReport::hasCode(const std::string &Code) const {
  for (const Diagnostic &D : Diags)
    if (D.Code == Code)
      return true;
  return false;
}

std::string DiagnosticReport::render() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags)
    OS << D.render() << "\n";
  OS << errors() << " error(s), " << warnings() << " warning(s), " << notes()
     << " note(s)";
  return OS.str();
}

void DiagnosticReport::merge(DiagnosticReport Other) {
  for (Diagnostic &D : Other.Diags)
    Diags.push_back(std::move(D));
}

void DiagnosticReport::tagTask(const std::string &Task) {
  for (Diagnostic &D : Diags)
    if (D.Task.empty())
      D.Task = Task;
}
