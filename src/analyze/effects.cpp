//===- analyze/effects.cpp ------------------------------------*- C++ -*-===//

#include "analyze/effects.h"

#include "ir/printer.h"
#include "ir/visitor.h"
#include "support/casting.h"
#include "support/error.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace latte;
using namespace latte::analyze;
using namespace latte::compiler;
using namespace latte::ir;

//===----------------------------------------------------------------------===//
// AffineExpr
//===----------------------------------------------------------------------===//

void AffineExpr::accumulate(const AffineExpr &Other, int64_t Scale) {
  if (!Other.Affine)
    Affine = false;
  if (!Affine)
    return;
  Const += Scale * Other.Const;
  for (const auto &[Var, C] : Other.Coeffs) {
    int64_t &Slot = Coeffs[Var];
    Slot += Scale * C;
    if (Slot == 0)
      Coeffs.erase(Var);
  }
}

std::string AffineExpr::str() const {
  if (!Affine)
    return "<non-affine>";
  std::ostringstream OS;
  bool First = true;
  for (const auto &[Var, C] : Coeffs) {
    if (!First)
      OS << " + ";
    First = false;
    if (C == 1)
      OS << Var;
    else
      OS << C << "*" << Var;
  }
  if (Const != 0 || First) {
    if (!First)
      OS << " + ";
    OS << Const;
  }
  return OS.str();
}

/// Recognizes the mod composite the slice-rotation pass emits:
///   v - C * (v / C)  ==  v % C      (Mul operands in either order)
/// so the footprint machinery can model rotated indices instead of widening
/// on the Div. On match, fills \p Var / \p Mod and returns true.
static bool matchModComposite(const BinaryExpr *B, std::string &Var,
                              int64_t &Mod) {
  if (B->op() != BinaryOpKind::Sub)
    return false;
  const auto *V = dyn_cast<VarExpr>(B->lhs());
  const auto *M = dyn_cast<BinaryExpr>(B->rhs());
  if (!V || !M || M->op() != BinaryOpKind::Mul)
    return false;
  const auto *C = dyn_cast<IntConstExpr>(M->lhs());
  const Expr *Quot = M->rhs();
  if (!C) {
    C = dyn_cast<IntConstExpr>(M->rhs());
    Quot = M->lhs();
  }
  const auto *D = dyn_cast<BinaryExpr>(Quot);
  if (!C || !D || D->op() != BinaryOpKind::Div)
    return false;
  const auto *DV = dyn_cast<VarExpr>(D->lhs());
  const auto *DC = dyn_cast<IntConstExpr>(D->rhs());
  if (!DV || !DC || DV->name() != V->name() || DC->value() != C->value() ||
      C->value() <= 0)
    return false;
  Var = V->name();
  Mod = C->value();
  return true;
}

AffineExpr analyze::affineOf(const Expr *E) {
  if (!E)
    return AffineExpr::constant(0);
  switch (E->kind()) {
  case Expr::Kind::IntConst:
    return AffineExpr::constant(cast<IntConstExpr>(E)->value());
  case Expr::Kind::Var: {
    AffineExpr A;
    A.Coeffs[cast<VarExpr>(E)->name()] = 1;
    return A;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    // `v % C` appears as a pseudo-variable "v%C" with range [0, C); '%'
    // cannot occur in a real identifier, so the name never collides.
    // makeFootprint folds the pseudo-var into a bounded level.
    {
      std::string MV;
      int64_t Mod = 0;
      if (matchModComposite(B, MV, Mod)) {
        AffineExpr A;
        A.Coeffs[MV + "%" + std::to_string(Mod)] = 1;
        return A;
      }
    }
    AffineExpr L = affineOf(B->lhs());
    AffineExpr R = affineOf(B->rhs());
    switch (B->op()) {
    case BinaryOpKind::Add:
      L.accumulate(R, 1);
      return L;
    case BinaryOpKind::Sub:
      L.accumulate(R, -1);
      return L;
    case BinaryOpKind::Mul:
      if (R.isConstant()) {
        AffineExpr Out = AffineExpr::constant(0);
        Out.accumulate(L, R.Const);
        return Out;
      }
      if (L.isConstant()) {
        AffineExpr Out = AffineExpr::constant(0);
        Out.accumulate(R, L.Const);
        return Out;
      }
      return AffineExpr::unknown();
    case BinaryOpKind::Div:
      if (L.isConstant() && R.isConstant() && R.Const != 0)
        return AffineExpr::constant(L.Const / R.Const);
      return AffineExpr::unknown();
    case BinaryOpKind::Min:
    case BinaryOpKind::Max:
      if (L.isConstant() && R.isConstant())
        return AffineExpr::constant(B->op() == BinaryOpKind::Min
                                        ? std::min(L.Const, R.Const)
                                        : std::max(L.Const, R.Const));
      return AffineExpr::unknown();
    }
    return AffineExpr::unknown();
  }
  default:
    return AffineExpr::unknown();
  }
}

//===----------------------------------------------------------------------===//
// Footprint
//===----------------------------------------------------------------------===//

int64_t Footprint::spanEnd() const {
  int64_t End = Width;
  for (const FootprintLevel &L : Levels)
    End += (L.Extent - 1) * L.Stride;
  return End;
}

void Footprint::canonicalize() {
  // Drop degenerate levels (a level visited once, or always at offset 0,
  // contributes nothing beyond the base/width).
  Levels.erase(std::remove_if(Levels.begin(), Levels.end(),
                              [](const FootprintLevel &L) {
                                return L.Extent <= 1 || L.Stride == 0;
                              }),
               Levels.end());
  std::sort(Levels.begin(), Levels.end(),
            [](const FootprintLevel &A, const FootprintLevel &B) {
              return A.Stride < B.Stride;
            });
  // Coalesce levels whose stride does not exceed the contiguous width: the
  // union [0, Stride*(Extent-1) + Width) is exactly contiguous.
  std::vector<FootprintLevel> Kept;
  for (const FootprintLevel &L : Levels) {
    if (L.Stride <= Width)
      Width = L.Stride * (L.Extent - 1) + Width;
    else
      Kept.push_back(L);
  }
  Levels = std::move(Kept);
}

std::string Footprint::str() const {
  std::ostringstream OS;
  OS << "base(" << Base.str() << ")";
  for (const FootprintLevel &L : Levels)
    OS << " x" << L.Extent << "@" << L.Stride;
  OS << " +[0," << Width << ")";
  if (!Exact)
    OS << " ~approx";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// BufferTable
//===----------------------------------------------------------------------===//

BufferTable::BufferTable(const compiler::Program &TheProg) : Prog(TheProg) {
  for (const BufferInfo &B : Prog.Buffers) {
    FloatInfo FI;
    FI.Strides = B.Dims.strides();
    FI.Count = B.Dims.numElements();
    FI.Role = B.Role;
    // Program::resolveAlias is bounded — cycles are the verifier's job.
    const BufferInfo *Root = Prog.resolveAlias(B.Name);
    FI.Root = Root ? Root->Name : B.Name;
    Floats.emplace(B.Name, std::move(FI));
  }
  for (const IntBufferInfo &B : Prog.IntBuffers) {
    IntInfo II;
    II.Count = B.isStatic() ? static_cast<int64_t>(B.Entries.size()) : B.Count;
    if (B.isStatic()) {
      for (int32_t V : B.Entries) {
        if (V < 0)
          continue; // -1 padding sentinel
        if (!II.HasEntries) {
          II.HasEntries = true;
          II.MinEntry = II.MaxEntry = V;
        } else {
          II.MinEntry = std::min<int64_t>(II.MinEntry, V);
          II.MaxEntry = std::max<int64_t>(II.MaxEntry, V);
        }
      }
    }
    Ints.emplace(B.Name, II);
  }
}

const BufferTable::FloatInfo *
BufferTable::floatInfo(const std::string &Name) const {
  auto It = Floats.find(Name);
  return It == Floats.end() ? nullptr : &It->second;
}

const BufferTable::IntInfo *
BufferTable::intInfo(const std::string &Name) const {
  auto It = Ints.find(Name);
  return It == Ints.end() ? nullptr : &It->second;
}

//===----------------------------------------------------------------------===//
// Kernel signatures
//===----------------------------------------------------------------------===//

KernelSignature analyze::kernelSignature(KernelKind K) {
  // Argument layouts mirror engine::Executor::execKernel (the runtime is
  // authoritative; KernelKind's doc comments predate the expr-arg split).
  switch (K) {
  case KernelKind::Zero:
    return {1, 1, 0, 0};
  case KernelKind::Copy:
  case KernelKind::AddTo:
    return {2, 1, 0, 0};
  case KernelKind::MulInto:
  case KernelKind::MulAddTo:
    return {3, 1, 0, 0};
  case KernelKind::Scale:
    return {1, 1, 0, 1};
  case KernelKind::Sgemm:
    return {3, 9, 0, 0};
  case KernelKind::Gather2D:
  case KernelKind::ScatterAdd2D:
    return {3, 3, 1, 0};
  case KernelKind::ActFwdCols:
    return {2, 4, 1, 0};
  case KernelKind::ActBwdCols:
    return {3, 5, 1, 0};
  case KernelKind::BiasAddCols:
    return {2, 3, 1, 0};
  case KernelKind::BiasAddPerRow:
  case KernelKind::RowSumAdd:
  case KernelKind::ColSumAdd:
    return {2, 2, 0, 0};
  case KernelKind::Im2ColRows:
  case KernelKind::Col2ImRows:
    return {2, 7, 1, 0};
  case KernelKind::MaxPoolFwdRows:
  case KernelKind::MaxPoolBwdRows:
    return {3, 7, 1, 0};
  case KernelKind::AvgPoolFwdRows:
  case KernelKind::AvgPoolBwdRows:
    return {2, 7, 1, 0};
  case KernelKind::SoftmaxFwd:
    return {2, 2, 0, 0};
  case KernelKind::SoftmaxLossFwd:
    return {4, 2, 0, 0};
  case KernelKind::SoftmaxLossBwd:
    return {3, 2, 0, 1};
  case KernelKind::SoftmaxBwd:
    return {3, 2, 0, 0};
  case KernelKind::DropoutMask:
    return {1, 1, 0, 1};
  case KernelKind::GradSyncHook:
    return {1, 1, 0, 0};
  }
  return {0, 0, 0, 0};
}

bool analyze::kernelBufArgIsInt(KernelKind K, size_t BufIdx) {
  switch (K) {
  case KernelKind::Gather2D:
  case KernelKind::ScatterAdd2D:
  case KernelKind::MaxPoolFwdRows:
  case KernelKind::MaxPoolBwdRows:
    return BufIdx == 2;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Effect collection
//===----------------------------------------------------------------------===//

namespace {

struct SeqRange {
  AffineExpr Lo;
  int64_t Extent = 0;
};

class Collector {
public:
  Collector(const BufferTable &Bufs, DiagnosticReport *Diags)
      : Bufs(Bufs), Diags(Diags) {}

  UnitEffects run(const Stmt *Unit);

private:
  void walk(const Stmt *S);
  void collectReads(const Expr *E);
  void kernelEffects(const KernelCallStmt *K);

  /// Folds every bound sequential variable of \p Offset into Levels; what
  /// remains in the base may only mention the parallel dimensions.
  Footprint makeFootprint(AffineExpr Offset, std::vector<FootprintLevel> Levels,
                          int64_t Width, bool Exact, int64_t BufferCount);
  Footprint wholeBuffer(int64_t Count) {
    Footprint Fp;
    Fp.Width = std::max<int64_t>(Count, 1);
    Fp.Exact = false;
    return Fp;
  }

  void addFloatAccess(const std::string &Name, Footprint Fp, bool Write,
                      bool Read, bool Accum, std::string Detail,
                      const Footprint *BoundFp = nullptr);
  void addIntAccess(const std::string &Name, Footprint Fp, bool Write,
                    bool Read, std::string Detail);

  const BufferTable &Bufs;
  DiagnosticReport *Diags;
  UnitEffects Result;
  std::map<std::string, SeqRange> Bound; ///< sequential loop vars in scope
  std::set<std::string> ParallelVars;
};

UnitEffects Collector::run(const Stmt *Unit) {
  const Stmt *Body = Unit;
  if (const auto *F = dyn_cast_if_present<const ForStmt>(Unit);
      F && F->annotations().Parallel) {
    int64_t Lo = 0;
    evalConstInt(F->lo(), Lo); // assembled programs use constant bounds
    Result.Dims.push_back({F->var(), Lo, F->extent()});
    ParallelVars.insert(F->var());
    Body = F->body();
    if (F->annotations().Collapse == 2)
      if (const auto *B = dyn_cast<BlockStmt>(Body); B && B->stmts().size() == 1)
        if (const auto *TL = dyn_cast<TiledLoopStmt>(B->stmts()[0].get())) {
          Result.Dims.push_back({TL->tileVar(), 0, TL->numTiles()});
          ParallelVars.insert(TL->tileVar());
          Result.Collapsed = true;
          Body = TL->body();
        }
  }
  walk(Body);
  return std::move(Result);
}

void Collector::walk(const Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : cast<BlockStmt>(S)->stmts())
      walk(Child.get());
    return;
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    collectReads(F->lo());
    SeqRange Saved;
    bool HadPrev = Bound.count(F->var()) != 0;
    if (HadPrev)
      Saved = Bound[F->var()];
    Bound[F->var()] = {affineOf(F->lo()), F->extent()};
    walk(F->body());
    if (HadPrev)
      Bound[F->var()] = Saved;
    else
      Bound.erase(F->var());
    return;
  }
  case Stmt::Kind::TiledLoop: {
    const auto *T = cast<TiledLoopStmt>(S);
    SeqRange Saved;
    bool HadPrev = Bound.count(T->tileVar()) != 0;
    if (HadPrev)
      Saved = Bound[T->tileVar()];
    Bound[T->tileVar()] = {AffineExpr::constant(0), T->numTiles()};
    walk(T->body());
    if (HadPrev)
      Bound[T->tileVar()] = Saved;
    else
      Bound.erase(T->tileVar());
    return;
  }
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    collectReads(If->cond());
    walk(If->thenStmt());
    walk(If->elseStmt());
    return;
  }
  case Stmt::Kind::Store: {
    const auto *St = cast<StoreStmt>(S);
    collectReads(St->value());
    for (const ExprPtr &I : St->indices())
      collectReads(I.get());
    const BufferTable::FloatInfo *FI = Bufs.floatInfo(St->buffer());
    if (!FI) {
      if (Diags)
        Diags->error("ir.unknown-buffer",
                     "store to unknown buffer '" + St->buffer() + "'");
      return;
    }
    std::string Detail = "store " + St->buffer() + "[";
    AffineExpr Off = AffineExpr::constant(0);
    for (size_t I = 0; I < St->indices().size(); ++I) {
      if (I)
        Detail += ", ";
      Detail += printExpr(St->indices()[I].get());
      int64_t Stride =
          I < FI->Strides.size() ? FI->Strides[I] : 0;
      Off.accumulate(affineOf(St->indices()[I].get()), Stride);
    }
    Detail += "]";
    Footprint Fp =
        static_cast<int>(St->indices().size()) == FI->rank() && Off.Affine
            ? makeFootprint(std::move(Off), {}, 1, true, FI->Count)
            : wholeBuffer(FI->Count);
    bool Accum = St->op() == AccumKind::AddAssign;
    bool Rmw = St->op() != AccumKind::Assign;
    addFloatAccess(St->buffer(), std::move(Fp), /*Write=*/true, /*Read=*/Rmw,
                   Accum, std::move(Detail));
    return;
  }
  case Stmt::Kind::Decl:
    collectReads(cast<DeclStmt>(S)->init());
    return;
  case Stmt::Kind::AssignVar:
    collectReads(cast<AssignVarStmt>(S)->value());
    return;
  case Stmt::Kind::KernelCall:
    kernelEffects(cast<KernelCallStmt>(S));
    return;
  case Stmt::Kind::Barrier:
    return;
  }
}

void Collector::collectReads(const Expr *E) {
  if (!E)
    return;
  walkExprs(E, [&](const Expr *Node) {
    const auto *L = dyn_cast<LoadExpr>(Node);
    if (!L)
      return;
    const BufferTable::FloatInfo *FI = Bufs.floatInfo(L->buffer());
    if (!FI) {
      if (Diags)
        Diags->error("ir.unknown-buffer",
                     "load from unknown buffer '" + L->buffer() + "'");
      return;
    }
    AffineExpr Off = AffineExpr::constant(0);
    for (size_t I = 0; I < L->indices().size(); ++I)
      Off.accumulate(affineOf(L->indices()[I].get()),
                     I < FI->Strides.size() ? FI->Strides[I] : 0);
    Footprint Fp =
        static_cast<int>(L->indices().size()) == FI->rank() && Off.Affine
            ? makeFootprint(std::move(Off), {}, 1, true, FI->Count)
            : wholeBuffer(FI->Count);
    addFloatAccess(L->buffer(), std::move(Fp), /*Write=*/false, /*Read=*/true,
                   /*Accum=*/false, "load " + printExpr(Node));
  });
}

Footprint Collector::makeFootprint(AffineExpr Offset,
                                   std::vector<FootprintLevel> Levels,
                                   int64_t Width, bool Exact,
                                   int64_t BufferCount) {
  Footprint Fp;
  Fp.Levels = std::move(Levels);
  Fp.Width = Width;
  Fp.Exact = Exact;
  if (!Offset.Affine)
    return wholeBuffer(BufferCount);
  // Fold bound sequential loops into levels. Lower bounds may reference
  // other loop variables (tile row begins), so iterate to a fixpoint.
  for (int Iter = 0; Iter < 64; ++Iter) {
    auto It = std::find_if(Offset.Coeffs.begin(), Offset.Coeffs.end(),
                           [&](const auto &Entry) {
                             return Bound.count(Entry.first) != 0;
                           });
    if (It == Offset.Coeffs.end())
      break;
    std::string Var = It->first;
    int64_t C = It->second;
    Offset.Coeffs.erase(It);
    const SeqRange &R = Bound[Var];
    Offset.accumulate(R.Lo, C);
    if (!Offset.Affine)
      return wholeBuffer(BufferCount);
    if (R.Extent > 1) {
      if (C > 0)
        Fp.Levels.push_back({R.Extent, C});
      else if (C < 0) {
        Offset.Const += C * (R.Extent - 1);
        Fp.Levels.push_back({R.Extent, -C});
      }
    }
  }
  // Mod-composite pseudo-variables ("n%D", from the slice-rotation pass):
  // v % D ranges over [0, D) whenever v is a non-negative loop variable, so
  // the pseudo-var folds into a level exactly like a bound [0, D)
  // sequential loop — provided the underlying variable is actually in
  // scope (parallel or bound); otherwise widen like any unbound name.
  for (auto It = Offset.Coeffs.begin(); It != Offset.Coeffs.end();) {
    size_t Pct = It->first.find('%');
    if (Pct == std::string::npos) {
      ++It;
      continue;
    }
    std::string Prefix = It->first.substr(0, Pct);
    int64_t Mod = 0;
    for (size_t I = Pct + 1; I < It->first.size(); ++I)
      Mod = Mod * 10 + (It->first[I] - '0');
    if (Mod <= 0 ||
        (ParallelVars.count(Prefix) == 0 && Bound.count(Prefix) == 0))
      return wholeBuffer(BufferCount);
    int64_t C = It->second;
    if (Mod > 1) {
      if (C > 0)
        Fp.Levels.push_back({Mod, C});
      else if (C < 0) {
        Offset.Const += C * (Mod - 1);
        Fp.Levels.push_back({Mod, -C});
      }
    }
    It = Offset.Coeffs.erase(It);
  }
  // Leftover coefficients must belong to the parallel dimensions; anything
  // else (an unbound variable — the verifier reports it) forces widening.
  for (const auto &[Var, C] : Offset.Coeffs)
    if (ParallelVars.count(Var) == 0)
      return wholeBuffer(BufferCount);
  Fp.Base = std::move(Offset);
  Fp.canonicalize();
  return Fp;
}

void Collector::addFloatAccess(const std::string &Name, Footprint Fp,
                               bool Write, bool Read, bool Accum,
                               std::string Detail, const Footprint *BoundFp) {
  const BufferTable::FloatInfo *FI = Bufs.floatInfo(Name);
  Access A;
  A.Write = Write;
  A.Read = Read;
  A.Accumulating = Accum;
  A.Fp = std::move(Fp);
  if (BoundFp) {
    A.HasBound = true;
    A.Bound = *BoundFp;
  }
  A.Detail = std::move(Detail);
  Result.Effects.add(FI ? FI->Root : Name, std::move(A));
}

void Collector::addIntAccess(const std::string &Name, Footprint Fp, bool Write,
                             bool Read, std::string Detail) {
  Access A;
  A.Write = Write;
  A.Read = Read;
  A.Fp = std::move(Fp);
  A.Detail = std::move(Detail);
  Result.Effects.add("int:" + Name, std::move(A));
}

void Collector::kernelEffects(const KernelCallStmt *K) {
  const KernelSignature Sig = kernelSignature(K->kernel());
  const std::vector<int64_t> &IA = K->intArgs();
  if (static_cast<int>(K->bufs().size()) < Sig.NumBufs ||
      static_cast<int>(IA.size()) < Sig.NumInts ||
      static_cast<int>(K->exprArgs().size()) < Sig.NumExprs) {
    if (Diags)
      Diags->error("kernel.arity",
                   std::string("kernel '") + kernelKindName(K->kernel()) +
                       "' has too few arguments for its signature");
    return;
  }
  for (const KernelBufArg &B : K->bufs())
    if (B.Offset)
      collectReads(B.Offset.get());
  for (const ExprPtr &E : K->exprArgs())
    collectReads(E.get());

  auto BufName = [&](int I) { return K->bufs()[I].Buffer; };
  auto BufOff = [&](int I) {
    return K->bufs()[I].Offset ? affineOf(K->bufs()[I].Offset.get())
                               : AffineExpr::constant(0);
  };
  std::string KName = kernelKindName(K->kernel());

  /// Emits one float-buffer access: base = arg offset + Extra. When
  /// \p BoundWidth is positive and the footprint ends up inexact, a bound
  /// footprint [arg offset, arg offset + BoundWidth) is attached: the
  /// runtime clips padded windows, so even though the affine window model
  /// overhangs, the touched elements are guaranteed to stay inside the
  /// kernel's own image slice.
  auto Acc = [&](int I, AffineExpr Extra, std::vector<FootprintLevel> Levels,
                 int64_t Width, bool Exact, bool Write, bool Read,
                 bool Accum, int64_t BoundWidth = 0) {
    const BufferTable::FloatInfo *FI = Bufs.floatInfo(BufName(I));
    if (!FI) {
      if (Diags)
        Diags->error("ir.unknown-buffer", "kernel '" + KName +
                                              "' references unknown buffer '" +
                                              BufName(I) + "'");
      return;
    }
    AffineExpr Off = BufOff(I);
    Off.accumulate(Extra, 1);
    Footprint Fp = Off.Affine && Exact
                       ? makeFootprint(std::move(Off), std::move(Levels),
                                       Width, true, FI->Count)
                       : (Off.Affine ? makeFootprint(std::move(Off),
                                                     std::move(Levels), Width,
                                                     false, FI->Count)
                                     : wholeBuffer(FI->Count));
    Footprint BoundFp;
    bool HasBound = false;
    if (BoundWidth > 0 && !Fp.Exact) {
      AffineExpr BOff = BufOff(I);
      if (BOff.Affine) {
        BoundFp = makeFootprint(std::move(BOff), {}, BoundWidth, true,
                                FI->Count);
        HasBound = BoundFp.Exact;
      }
    }
    addFloatAccess(BufName(I), std::move(Fp), Write, Read, Accum,
                   KName + " arg" + std::to_string(I) + " '" + BufName(I) +
                       "'",
                   HasBound ? &BoundFp : nullptr);
  };
  auto IntAcc = [&](int I, AffineExpr Extra, std::vector<FootprintLevel> Levels,
                    int64_t Width, bool Write) {
    const BufferTable::IntInfo *II = Bufs.intInfo(BufName(I));
    if (!II) {
      if (Diags)
        Diags->error("ir.unknown-buffer",
                     "kernel '" + KName + "' references unknown int buffer '" +
                         BufName(I) + "'");
      return;
    }
    AffineExpr Off = BufOff(I);
    Off.accumulate(Extra, 1);
    Footprint Fp = Off.Affine
                       ? makeFootprint(std::move(Off), std::move(Levels),
                                       Width, true, II->Count)
                       : wholeBuffer(II->Count);
    addIntAccess(BufName(I), std::move(Fp), Write, !Write,
                 KName + " arg" + std::to_string(I) + " '" + BufName(I) + "'");
  };
  /// Conservative data-dependent footprint through an index table: offsets
  /// bounded by the static table's [min, max] entry range when known,
  /// otherwise the whole buffer.
  auto TableAcc = [&](int I, int TableI, bool Write, bool Accum) {
    const BufferTable::FloatInfo *FI = Bufs.floatInfo(BufName(I));
    if (!FI)
      return; // reported by the exact-footprint path or verifier
    const BufferTable::IntInfo *II = Bufs.intInfo(BufName(TableI));
    AffineExpr Off = BufOff(I);
    Footprint Fp;
    if (Off.Affine && II && II->HasEntries) {
      Off.Const += II->MinEntry;
      Fp = makeFootprint(std::move(Off), {},
                         II->MaxEntry - II->MinEntry + 1, false, FI->Count);
      Fp.Exact = false;
    } else {
      Fp = wholeBuffer(FI->Count);
    }
    addFloatAccess(BufName(I), std::move(Fp), Write, !Write || Accum, Accum,
                   KName + " arg" + std::to_string(I) + " '" + BufName(I) +
                       "' (table-indexed)");
  };

  const AffineExpr Zero = AffineExpr::constant(0);
  auto ExprA = [&](int I) { return affineOf(K->exprArgs()[I].get()); };

  switch (K->kernel()) {
  case KernelKind::Zero:
    Acc(0, Zero, {}, IA[0], true, true, false, false);
    return;
  case KernelKind::Copy:
    Acc(0, Zero, {}, IA[0], true, true, false, false);
    Acc(1, Zero, {}, IA[0], true, false, true, false);
    return;
  case KernelKind::AddTo:
    Acc(0, Zero, {}, IA[0], true, true, true, true);
    Acc(1, Zero, {}, IA[0], true, false, true, false);
    return;
  case KernelKind::MulInto:
    Acc(0, Zero, {}, IA[0], true, true, false, false);
    Acc(1, Zero, {}, IA[0], true, false, true, false);
    Acc(2, Zero, {}, IA[0], true, false, true, false);
    return;
  case KernelKind::MulAddTo:
    Acc(0, Zero, {}, IA[0], true, true, true, true);
    Acc(1, Zero, {}, IA[0], true, false, true, false);
    Acc(2, Zero, {}, IA[0], true, false, true, false);
    return;
  case KernelKind::Scale:
    // *= is a read-modify-write; not a += accumulation, so racing Scale
    // calls are never whitelisted as lossy.
    Acc(0, Zero, {}, IA[0], true, true, true, false);
    return;
  case KernelKind::Sgemm: {
    int64_t M = IA[0], N = IA[1], Kd = IA[2];
    int64_t LdA = IA[3], LdB = IA[4], LdC = IA[5];
    bool TA = IA[6] != 0, TB = IA[7] != 0, AccC = IA[8] != 0;
    if (TA)
      Acc(0, Zero, {{Kd, LdA}}, M, true, false, true, false);
    else
      Acc(0, Zero, {{M, LdA}}, Kd, true, false, true, false);
    if (TB)
      Acc(1, Zero, {{N, LdB}}, Kd, true, false, true, false);
    else
      Acc(1, Zero, {{Kd, LdB}}, N, true, false, true, false);
    Acc(2, Zero, {{M, LdC}}, N, true, true, AccC, AccC);
    return;
  }
  case KernelKind::Gather2D: {
    int64_t Rows = IA[0], Cols = IA[1], Cnt = IA[2];
    Acc(0, ExprA(0), {{Rows, Cols}}, Cnt, true, true, false, false);
    TableAcc(1, 2, /*Write=*/false, /*Accum=*/false);
    IntAcc(2, ExprA(0), {{Rows, Cols}}, Cnt, false);
    return;
  }
  case KernelKind::ScatterAdd2D: {
    int64_t Rows = IA[0], Cols = IA[1], Cnt = IA[2];
    TableAcc(0, 2, /*Write=*/true, /*Accum=*/true);
    Acc(1, ExprA(0), {{Rows, Cols}}, Cnt, true, false, true, false);
    IntAcc(2, ExprA(0), {{Rows, Cols}}, Cnt, false);
    return;
  }
  case KernelKind::ActFwdCols: {
    int64_t Rows = IA[1], Cols = IA[2], Cnt = IA[3];
    Acc(0, ExprA(0), {{Rows, Cols}}, Cnt, true, true, false, false);
    Acc(1, ExprA(0), {{Rows, Cols}}, Cnt, true, false, true, false);
    return;
  }
  case KernelKind::ActBwdCols: {
    int64_t Rows = IA[1], Cols = IA[2], Cnt = IA[3];
    bool InPlace = IA[4] != 0;
    Acc(0, ExprA(0), {{Rows, Cols}}, Cnt, true, true, !InPlace, !InPlace);
    Acc(1, ExprA(0), {{Rows, Cols}}, Cnt, true, false, true, false);
    Acc(2, ExprA(0), {{Rows, Cols}}, Cnt, true, false, true, false);
    return;
  }
  case KernelKind::BiasAddCols: {
    int64_t Rows = IA[0], Cols = IA[1], Cnt = IA[2];
    Acc(0, ExprA(0), {{Rows, Cols}}, Cnt, true, true, true, true);
    Acc(1, Zero, {}, Rows, true, false, true, false);
    return;
  }
  case KernelKind::BiasAddPerRow: {
    int64_t Rows = IA[0], Cols = IA[1];
    Acc(0, Zero, {}, Rows * Cols, true, true, true, true);
    Acc(1, Zero, {}, Cols, true, false, true, false);
    return;
  }
  case KernelKind::RowSumAdd: {
    int64_t Rows = IA[0], Cols = IA[1];
    Acc(0, Zero, {}, Rows, true, true, true, true);
    Acc(1, Zero, {}, Rows * Cols, true, false, true, false);
    return;
  }
  case KernelKind::ColSumAdd: {
    int64_t Rows = IA[0], Cols = IA[1];
    Acc(0, Zero, {}, Cols, true, true, true, true);
    Acc(1, Zero, {}, Rows * Cols, true, false, true, false);
    return;
  }
  case KernelKind::Im2ColRows:
  case KernelKind::Col2ImRows:
  case KernelKind::MaxPoolFwdRows:
  case KernelKind::MaxPoolBwdRows:
  case KernelKind::AvgPoolFwdRows:
  case KernelKind::AvgPoolBwdRows: {
    // ints: {C, InH, InW, K, S, Pad, RowCount}; exprs: {RowBegin}. "Rows"
    // are output-image rows; CHW layout strides the channels.
    int64_t C = IA[0], InH = IA[1], InW = IA[2], Kw = IA[3], S = IA[4],
            Pad = IA[5], Rc = IA[6];
    int64_t OutH = S > 0 ? (InH + 2 * Pad - Kw) / S + 1 : 1;
    int64_t OutW = S > 0 ? (InW + 2 * Pad - Kw) / S + 1 : 1;
    AffineExpr Rb = ExprA(0);
    // Output-side region: rows [Rb, Rb+Rc) of every output channel/row.
    AffineExpr OutBase = Zero;
    OutBase.accumulate(Rb, OutW);
    // Input-side window: rows [Rb*S - Pad, (Rb+Rc-1)*S + Kw - Pad) of every
    // input channel. Exact only without padding (padded windows clip).
    AffineExpr InBase = Zero;
    InBase.accumulate(Rb, S * InW);
    InBase.Const -= Pad * InW;
    int64_t InWidth = ((Rc - 1) * S + Kw) * InW;
    bool InExact = Pad == 0;
    switch (K->kernel()) {
    case KernelKind::Im2ColRows: {
      // Col matrix [C*K*K] x [OutH*OutW]: the output-row slice of every
      // col-matrix row.
      int64_t ColRows = C * Kw * Kw, ColCols = OutH * OutW;
      Acc(0, OutBase, {{ColRows, ColCols}}, Rc * OutW, true, true, false,
          false);
      Acc(1, InBase, {{C, InH * InW}}, InWidth, InExact, false, true, false,
          C * InH * InW);
      return;
    }
    case KernelKind::Col2ImRows: {
      int64_t ColRows = C * Kw * Kw, ColCols = OutH * OutW;
      Acc(0, InBase, {{C, InH * InW}}, InWidth, InExact, true, true, true,
          C * InH * InW);
      Acc(1, OutBase, {{ColRows, ColCols}}, Rc * OutW, true, false, true,
          false);
      return;
    }
    case KernelKind::MaxPoolFwdRows:
      Acc(0, OutBase, {{C, OutH * OutW}}, Rc * OutW, true, true, false,
          false);
      Acc(1, InBase, {{C, InH * InW}}, InWidth, InExact, false, true, false,
          C * InH * InW);
      IntAcc(2, OutBase, {{C, OutH * OutW}}, Rc * OutW, true);
      return;
    case KernelKind::MaxPoolBwdRows:
      Acc(0, InBase, {{C, InH * InW}}, InWidth, InExact, true, true, true,
          C * InH * InW);
      Acc(1, OutBase, {{C, OutH * OutW}}, Rc * OutW, true, false, true,
          false);
      IntAcc(2, OutBase, {{C, OutH * OutW}}, Rc * OutW, false);
      return;
    case KernelKind::AvgPoolFwdRows:
      Acc(0, OutBase, {{C, OutH * OutW}}, Rc * OutW, true, true, false,
          false);
      Acc(1, InBase, {{C, InH * InW}}, InWidth, InExact, false, true, false,
          C * InH * InW);
      return;
    case KernelKind::AvgPoolBwdRows:
      Acc(0, InBase, {{C, InH * InW}}, InWidth, InExact, true, true, true,
          C * InH * InW);
      Acc(1, OutBase, {{C, OutH * OutW}}, Rc * OutW, true, false, true,
          false);
      return;
    default:
      return;
    }
  }
  case KernelKind::SoftmaxFwd: {
    int64_t RC = IA[0] * IA[1];
    Acc(0, Zero, {}, RC, true, true, false, false);
    Acc(1, Zero, {}, RC, true, false, true, false);
    return;
  }
  case KernelKind::SoftmaxLossFwd: {
    int64_t Rows = IA[0], RC = IA[0] * IA[1];
    Acc(0, Zero, {}, RC, true, true, false, false);
    Acc(1, Zero, {}, RC, true, false, true, false);
    Acc(2, Zero, {}, Rows, true, false, true, false);
    Acc(3, Zero, {}, Rows, true, true, false, false);
    return;
  }
  case KernelKind::SoftmaxLossBwd: {
    int64_t Rows = IA[0], RC = IA[0] * IA[1];
    Acc(0, Zero, {}, RC, true, true, true, true);
    Acc(1, Zero, {}, RC, true, false, true, false);
    Acc(2, Zero, {}, Rows, true, false, true, false);
    return;
  }
  case KernelKind::SoftmaxBwd: {
    int64_t RC = IA[0] * IA[1];
    Acc(0, Zero, {}, RC, true, true, true, true);
    Acc(1, Zero, {}, RC, true, false, true, false);
    Acc(2, Zero, {}, RC, true, false, true, false);
    return;
  }
  case KernelKind::DropoutMask:
    Acc(0, Zero, {}, IA[0], true, true, false, false);
    return;
  case KernelKind::GradSyncHook:
    Acc(0, Zero, {}, IA[0], true, false, true, false);
    return;
  }
}

} // namespace

UnitEffects analyze::collectUnitEffects(const Stmt *Unit,
                                        const BufferTable &Bufs,
                                        DiagnosticReport *Diags) {
  Collector C(Bufs, Diags);
  return C.run(Unit);
}

std::string analyze::dumpEffects(const EffectSet &Effects) {
  std::ostringstream OS;
  for (const auto &[Buffer, Accesses] : Effects.Buffers) {
    OS << "  " << Buffer << ":\n";
    for (const Access &A : Accesses) {
      OS << "    ";
      OS << (A.Write && A.Read ? "RW" : (A.Write ? "W " : "R "));
      if (A.Accumulating)
        OS << " accum";
      OS << " " << A.Fp.str() << "  <- " << A.Detail << "\n";
    }
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Sub-unit (per-batch-item) slice classification
//===----------------------------------------------------------------------===//

const char *analyze::sliceClassName(SliceClass C) {
  switch (C) {
  case SliceClass::ItemPrivate:
    return "item-private";
  case SliceClass::ItemShared:
    return "item-shared";
  case SliceClass::Inexact:
    return "inexact";
  }
  latteUnreachable("unknown slice class");
}

namespace {

/// Classifies one access against the batch dimension: the access footprint
/// (or, for inexact footprints, the guaranteed bound region) must be
/// `S * n + resid` with resid + span contained in [0, S] over every value
/// of the unit's remaining parallel dimensions.
SliceClass classifyAccess(const Access &A, const std::string &BatchVar,
                          const std::vector<ParallelDim> &Dims, int64_t S) {
  const Footprint *F = nullptr;
  if (A.Fp.Exact)
    F = &A.Fp;
  else if (A.HasBound)
    F = &A.Bound;
  else
    return SliceClass::Inexact;
  if (!F->Base.Affine)
    return SliceClass::Inexact;
  int64_t CN = F->Base.coeff(BatchVar);
  int64_t Min = F->Base.Const;
  int64_t Max = F->Base.Const;
  for (const auto &[Var, C] : F->Base.Coeffs) {
    if (Var == BatchVar)
      continue;
    const ParallelDim *D = nullptr;
    for (const ParallelDim &PD : Dims)
      if (PD.Var == Var)
        D = &PD;
    if (!D)
      return SliceClass::Inexact; // unbound name slipped through — widen
    int64_t LoV = D->Lo;
    int64_t HiV = D->Lo + D->Extent - 1;
    Min += C * (C >= 0 ? LoV : HiV);
    Max += C * (C >= 0 ? HiV : LoV);
  }
  if (CN != S || Min < 0 || Max + F->spanEnd() > S)
    return SliceClass::ItemShared;
  return SliceClass::ItemPrivate;
}

/// True when \p A is an exact covering overwrite of the whole item slice:
/// a pure write whose canonicalized footprint is exactly S*n + [0, S).
bool coversItemSlice(const Access &A, const std::string &BatchVar,
                     int64_t S) {
  if (!A.Write || A.Read || A.Accumulating || !A.Fp.Exact)
    return false;
  const Footprint &F = A.Fp;
  if (!F.Base.Affine || F.Base.Const != 0 || !F.Levels.empty())
    return false;
  if (F.Base.Coeffs.size() != 1 || F.Base.coeff(BatchVar) != S)
    return false;
  return F.Width == S;
}

} // namespace

std::map<std::string, SliceInfo>
analyze::classifySubUnit(const Stmt *Unit, const BufferTable &Bufs) {
  std::map<std::string, SliceInfo> Out;
  const auto *F = dyn_cast_if_present<const ForStmt>(Unit);
  if (!F || F->extent() <= 1)
    return Out;
  // Re-analyze a clone with the batch loop forced parallel: at lattice
  // points where the parallelization pass left the loop unannotated, the
  // collector folds the batch variable into a sequential level and the
  // per-item footprint this analysis is about no longer exists.
  StmtPtr Clone = F->clone();
  cast<ForStmt>(Clone.get())->annotations().Parallel = true;
  UnitEffects UE = collectUnitEffects(Clone.get(), Bufs, nullptr);
  if (UE.Dims.empty())
    return Out;
  const std::string &BatchVar = UE.Dims[0].Var;
  for (const auto &[Root, Accesses] : UE.Effects.Buffers) {
    if (Root.rfind("int:", 0) == 0)
      continue; // int index tables are item-invariant; nothing to rotate
    const BufferTable::FloatInfo *FI = Bufs.floatInfo(Root);
    if (!FI)
      continue;
    SliceInfo Info;
    Info.ItemElems = FI->Strides.empty() ? FI->Count : FI->Strides[0];
    Info.Class = SliceClass::ItemPrivate;
    for (const Access &A : Accesses) {
      SliceClass C = classifyAccess(A, BatchVar, UE.Dims, Info.ItemElems);
      if (C == SliceClass::ItemPrivate)
        continue;
      if (Info.Why.empty())
        Info.Why = A.Detail; // first demoting access
      if (static_cast<int>(C) > static_cast<int>(Info.Class))
        Info.Class = C; // Inexact dominates ItemShared
    }
    if (Info.Class == SliceClass::ItemPrivate && !Accesses.empty())
      Info.ItemFresh = coversItemSlice(Accesses.front(), BatchVar,
                                       Info.ItemElems);
    Out.emplace(Root, std::move(Info));
  }
  return Out;
}

std::string analyze::dumpSubUnit(const std::map<std::string, SliceInfo> &Classes) {
  std::ostringstream OS;
  for (const auto &[Root, Info] : Classes) {
    OS << "  " << Root << ": " << sliceClassName(Info.Class);
    if (Info.Class == SliceClass::ItemPrivate)
      OS << " (item elems " << Info.ItemElems << ", "
         << (Info.ItemFresh ? "overwrite-first" : "carries in") << ")";
    if (!Info.Why.empty())
      OS << "  <- " << Info.Why;
    OS << "\n";
  }
  return OS.str();
}
