//===- runtime/data_parallel.h - Intra-node data parallelism --*- C++ -*-===//
///
/// \file
/// The first level of the Latte runtime's hierarchical data parallelism
/// (§6): several workers inside one process, each holding a replica of the
/// compiled network, splitting every global batch and synchronizing
/// gradients by summation. Two synchronization modes reproduce §3.1:
///
///  - Synchronized: per-worker gradients are reduced under a lock — the
///    deterministic default.
///  - Lossy: workers accumulate into the shared gradient buffers without
///    synchronization, racing as in Project Adam; the Figure 20 experiment
///    shows the resulting noise does not hurt accuracy.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_RUNTIME_DATA_PARALLEL_H
#define LATTE_RUNTIME_DATA_PARALLEL_H

#include "compiler/compiler.h"
#include "engine/executor.h"
#include "solvers/solvers.h"
#include "support/thread_pool.h"

#include <functional>
#include <memory>
#include <vector>

namespace latte {
namespace runtime {

struct DataParallelOptions {
  int NumWorkers = 2;
  bool LossyGradients = false;
  uint64_t Seed = 0x5eed;
  compiler::CompileOptions Compile;
};

/// Builds the model into \p Net (whose batch size is the per-worker
/// share).
using NetBuilder = std::function<void(core::Net &Net)>;

/// Replicated data-parallel trainer.
class DataParallelTrainer {
public:
  /// \p GlobalBatch must be divisible by the worker count.
  DataParallelTrainer(const NetBuilder &Builder, int64_t GlobalBatch,
                      DataParallelOptions Opts);

  int64_t globalBatch() const { return GlobalBatch; }
  int numWorkers() const { return static_cast<int>(Workers.size()); }
  engine::Executor &worker(int I) { return *Workers[I]; }

  /// One training step over a global batch: scatter, forward/backward on
  /// every worker in parallel, gradient summation, solver update on the
  /// master replica, parameter broadcast. Returns the mean loss.
  double trainStep(const Tensor &Data, const Tensor &Labels,
                   solvers::Solver &S, int64_t Iter);

  /// Mean accuracy over the last step's forward passes.
  double lastAccuracy() const { return LastAccuracy; }

private:
  int64_t GlobalBatch;
  DataParallelOptions Opts;
  std::vector<std::unique_ptr<engine::Executor>> Workers;
  ThreadPool Pool;
  /// Shared gradient accumulators (one per parameter, master layout).
  std::vector<Tensor> SharedGrads;
  double LastAccuracy = 0.0;
};

} // namespace runtime
} // namespace latte

#endif // LATTE_RUNTIME_DATA_PARALLEL_H
