//===- runtime/cluster_sim.h - Cluster-level scaling simulator -*- C++ -*-===//
///
/// \file
/// The second level of the runtime's data parallelism (§6): nodes of a
/// cluster exchanging gradients with asynchronous allreduce overlapped
/// with back-propagation (§5.3). Real multi-node hardware is unavailable
/// here, so this module is a discrete-event simulator of exactly that
/// protocol (see DESIGN.md): per-layer compute times (measured on the real
/// engine, apportioned by FLOPs) drive a timeline in which each layer's
/// gradient allreduce is issued the moment back-propagation produces it
/// and the network processes transfers one at a time. This reproduces the
/// strong-scaling (Figure 18) and weak-scaling (Figure 19) experiments.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_RUNTIME_CLUSTER_SIM_H
#define LATTE_RUNTIME_CLUSTER_SIM_H

#include "models/models.h"

#include <cstdint>
#include <string>
#include <vector>

namespace latte {
namespace runtime {

/// Network cost model for one ring allreduce of \p Bytes across \p Nodes.
struct NetworkModel {
  double LatencySec = 20e-6;          ///< per message
  double BandwidthBytesPerSec = 5e9;  ///< per link (e.g. ~40 Gb/s IB)

  double allreduceSeconds(int Nodes, int64_t Bytes) const;
};

/// One layer's contribution to an iteration.
struct LayerProfile {
  std::string Name;
  double FwdSeconds = 0.0;
  double BwdSeconds = 0.0;
  int64_t GradBytes = 0; ///< parameter gradient to synchronize (0 = none)
  /// Parallel loop iterations this layer exposes per batch item (the tile
  /// count of its collapsed batch x tile loop; 1 for FC layers, which
  /// parallelize over the batch only). Drives the load-balance model that
  /// reproduces the paper's small-batch efficiency loss (§7.2.1).
  int64_t TilesPerItem = 1;
};

/// Builds layer profiles for a model: forward/backward seconds are the
/// measured whole-network times apportioned by per-layer FLOP counts, and
/// GradBytes comes from the audit's parameter counts. \p MeasuredFwdSec /
/// \p MeasuredBwdSec are for one iteration at \p Batch items.
std::vector<LayerProfile> estimateLayerProfiles(const models::ModelSpec &Spec,
                                                int64_t Batch,
                                                double MeasuredFwdSec,
                                                double MeasuredBwdSec);

/// Per-layer FLOPs for one item (forward; backward is modeled as 2x).
std::vector<double> layerFlops(const models::ModelSpec &Spec);

struct ClusterConfig {
  int Nodes = 1;
  NetworkModel Network;
  /// Overlap communication with back-propagation (§5.3). When false every
  /// allreduce waits for the full backward pass (the naive schedule).
  bool OverlapComm = true;
  /// Cores per node (the paper's Cori nodes have 32; the evaluation
  /// machine 36). Parallel efficiency of a layer with U work units on C
  /// cores is U / (ceil(U/C) * C) — small per-node batches under-fill the
  /// machine, the cause the paper gives for the Figure 18 efficiency drop.
  int CoresPerNode = 32;
};

struct ClusterResult {
  double IterSeconds = 0.0;    ///< wall time of one training iteration
  double ComputeSeconds = 0.0; ///< per-node compute (fwd+bwd)
  double CommSeconds = 0.0;    ///< total allreduce time on the wire
  double ExposedCommSeconds = 0.0; ///< comm not hidden behind compute
};

/// Simulates one data-parallel training iteration where each node
/// processes \p PerNodeBatch items and the profiles were measured at
/// \p ProfileBatch items. Layer compute scales by the batch ratio divided
/// by the layer's load-balance factor on CoresPerNode cores.
ClusterResult simulateIteration(const std::vector<LayerProfile> &Layers,
                                const ClusterConfig &Config,
                                int64_t PerNodeBatch, int64_t ProfileBatch);

/// Convenience: cluster throughput (items/sec) for the same arguments.
double clusterThroughput(const std::vector<LayerProfile> &Layers,
                         const ClusterConfig &Config, int64_t PerNodeBatch,
                         int64_t ProfileBatch);

} // namespace runtime
} // namespace latte

#endif // LATTE_RUNTIME_CLUSTER_SIM_H
