//===- runtime/data_parallel.cpp ------------------------------*- C++ -*-===//

#include "runtime/data_parallel.h"

#include "kernels/elementwise.h"
#include "support/error.h"
#include "support/profile.h"

#include <optional>

using namespace latte;
using namespace latte::runtime;

DataParallelTrainer::DataParallelTrainer(const NetBuilder &Builder,
                                         int64_t GlobalBatch,
                                         DataParallelOptions Opts)
    : GlobalBatch(GlobalBatch), Opts(Opts), Pool(Opts.NumWorkers) {
  if (Opts.NumWorkers <= 0 || GlobalBatch % Opts.NumWorkers != 0)
    reportFatalError("global batch must divide evenly across workers");
  int64_t PerWorker = GlobalBatch / Opts.NumWorkers;
  for (int W = 0; W < Opts.NumWorkers; ++W) {
    core::Net Net(PerWorker);
    Builder(Net);
    engine::ExecOptions EO;
    EO.Seed = Opts.Seed;
    // Workers are the parallelism here; their internal loops stay serial.
    EO.Parallel = false;
    // With Opts.Compile.Jit on, every replica compiles the same per-worker
    // program, so all of them hash to the same JIT source and share one
    // loaded module through the content-hash registry (jit::JitModule::
    // getOrCreate): one compile + one dlopen for the whole pool.
    Workers.push_back(std::make_unique<engine::Executor>(
        compiler::compile(Net, Opts.Compile), EO));
  }
  // All replicas start from identical parameters.
  for (int W = 1; W < Opts.NumWorkers; ++W)
    for (const compiler::ParamBinding &B : Workers[0]->program().Params)
      Workers[W]->writeBuffer(B.Param, Workers[0]->readBuffer(B.Param));
  // Shared accumulators sized like the master's parameter gradients.
  for (const compiler::ParamBinding &B : Workers[0]->program().Params)
    SharedGrads.emplace_back(Workers[0]->shape(B.Grad));
}

double DataParallelTrainer::trainStep(const Tensor &Data,
                                      const Tensor &Labels,
                                      solvers::Solver &S, int64_t Iter) {
  const int W = numWorkers();
  const int64_t PerWorker = GlobalBatch / W;
  const int64_t ItemSize = Data.numElements() / GlobalBatch;
  assert(Labels.numElements() == GlobalBatch && "one label per batch item");

  for (Tensor &G : SharedGrads)
    G.zero();

  // When profiling, each worker records its own replica span (separate
  // trace tracks — the per-worker timing that makes load imbalance across
  // the pool visible in Perfetto).
  const bool Prof = prof::enabled();
  std::optional<prof::ScopedPhase> Phase;
  std::optional<prof::ScopedTimer> StepSpan;
  if (Prof) {
    Phase.emplace("train_step");
    StepSpan.emplace("train_step");
  }

  std::vector<double> Losses(W, 0.0), Accs(W, 0.0);
  Pool.parallelRun([&](int Id) {
    if (Id >= W)
      return;
    std::optional<prof::ScopedTimer> WorkerSpan;
    if (Prof)
      WorkerSpan.emplace("worker:" + std::to_string(Id));
    engine::Executor &Ex = *Workers[Id];
    // Scatter this worker's slice of the global batch.
    Tensor Slice(Ex.shape(Ex.program().DataBuffer));
    kernels::copy(Slice.data(), Data.data() + Id * PerWorker * ItemSize,
                  PerWorker * ItemSize);
    Tensor SliceLabels(Shape{PerWorker});
    kernels::copy(SliceLabels.data(), Labels.data() + Id * PerWorker,
                  PerWorker);
    Ex.setInput(Slice);
    Ex.setLabels(SliceLabels);
    Ex.forward();
    Ex.backward();
    Losses[Id] = Ex.lossValue();
    Accs[Id] = Ex.accuracy();

    // Lossy gradient summation (§3.1, Project Adam-style): every worker
    // accumulates into the shared buffers with no synchronization at all,
    // racing by design. The synchronized mode instead reduces after the
    // parallel section, below, in deterministic worker order.
    if (Opts.LossyGradients) {
      const auto &Params = Ex.program().Params;
      for (size_t P = 0; P < Params.size(); ++P)
        kernels::addTo(SharedGrads[P].data(), Ex.data(Params[P].Grad),
                       SharedGrads[P].numElements());
    }
  });

  if (!Opts.LossyGradients) {
    // Synchronized reduction (§3.1's default): gradient summation in a
    // fixed worker order, so results are bit-deterministic.
    std::optional<prof::ScopedTimer> ReduceSpan;
    if (Prof)
      ReduceSpan.emplace("grad_reduce");
    const auto &Params = Workers[0]->program().Params;
    for (int Id = 0; Id < W; ++Id)
      for (size_t P = 0; P < Params.size(); ++P)
        kernels::addTo(SharedGrads[P].data(),
                       Workers[Id]->data(Params[P].Grad),
                       SharedGrads[P].numElements());
  }

  // Apply the update on the master replica using the summed gradients,
  // rescaled so the step equals a single-worker pass over the whole global
  // batch (each worker's loss gradient is a per-worker-batch mean), then
  // broadcast the new parameters.
  engine::Executor &Master = *Workers[0];
  const auto &Params = Master.program().Params;
  for (size_t P = 0; P < Params.size(); ++P) {
    kernels::scale(SharedGrads[P].data(), 1.0f / static_cast<float>(W),
                   SharedGrads[P].numElements());
    Master.writeBuffer(Params[P].Grad, SharedGrads[P]);
  }
  S.step(Master, Iter);
  for (int Id = 1; Id < W; ++Id)
    for (const compiler::ParamBinding &B : Params)
      Workers[Id]->writeBuffer(B.Param, Master.readBuffer(B.Param));

  double Loss = 0, Acc = 0;
  for (int Id = 0; Id < W; ++Id) {
    Loss += Losses[Id];
    Acc += Accs[Id];
  }
  LastAccuracy = Acc / W;
  return Loss / W;
}
