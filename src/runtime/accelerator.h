//===- runtime/accelerator.h - Heterogeneous scheduling --------*- C++ -*-===//
///
/// \file
/// The intra-node accelerator runtime of §6.1. Physical Xeon Phi cards are
/// unavailable, so the *device* is a model (compute rate relative to the
/// host, PCIe bandwidth), but all the runtime logic the paper describes is
/// real and under test: splitting each batch into chunks across host and
/// devices, the linear-search chunk autotuner that grows device chunks
/// until device and host times match, input double buffering that hides
/// transfer latency after the first iteration, and the gradient-return
/// cost that the paper observes limits Xeon Phi throughput.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_RUNTIME_ACCELERATOR_H
#define LATTE_RUNTIME_ACCELERATOR_H

#include <cstdint>
#include <vector>

namespace latte {
namespace runtime {

/// A coprocessor model.
struct DeviceModel {
  /// Images/second relative to the host (0.5 = half the host's rate).
  double SpeedFactor = 0.5;
  double PcieBytesPerSec = 6e9; ///< one direction
  double LaunchOverheadSec = 50e-6;
};

struct HeterogeneousConfig {
  std::vector<DeviceModel> Devices;
  /// Host seconds to process one image (measured on the real engine).
  double HostSecondsPerItem = 0.0;
  int64_t BytesPerItem = 0;  ///< input transfer per image
  int64_t GradBytes = 0;     ///< gradients returned per chunk
  bool DoubleBuffering = true;
  int64_t InitialChunk = 16; ///< the paper's starting chunk size
};

/// The per-iteration schedule the runtime chose.
struct Schedule {
  std::vector<int64_t> DeviceChunks; ///< images per device
  int64_t HostItems = 0;
};

struct ThroughputResult {
  double ItemsPerSecond = 0.0;
  double IterSeconds = 0.0;
  Schedule Chosen;
};

class HeterogeneousScheduler {
public:
  explicit HeterogeneousScheduler(HeterogeneousConfig Config);

  /// Device seconds to compute \p Items images on device \p D.
  double deviceComputeSeconds(int D, int64_t Items) const;
  /// Transfer time for \p Bytes over PCIe to/from device \p D.
  double transferSeconds(int D, int64_t Bytes) const;

  /// The §6.1 linear search: start every device at InitialChunk and grow
  /// chunks while the device's chunk time is below the host's time on the
  /// remaining items. Runs once (at the start of training).
  Schedule autotune(int64_t Batch) const;

  /// Simulated wall time of one iteration under \p S. With double
  /// buffering the next chunk's input transfer overlaps compute, so after
  /// the first iteration only compute + gradient return are exposed.
  double iterationSeconds(const Schedule &S, bool FirstIteration) const;

  /// Steady-state throughput of one batch per iteration.
  ThroughputResult throughput(int64_t Batch) const;

private:
  HeterogeneousConfig Config;
};

} // namespace runtime
} // namespace latte

#endif // LATTE_RUNTIME_ACCELERATOR_H
