//===- runtime/cluster_sim.cpp --------------------------------*- C++ -*-===//

#include "runtime/cluster_sim.h"

#include "support/error.h"

#include <algorithm>

using namespace latte;
using namespace latte::models;
using namespace latte::runtime;

double NetworkModel::allreduceSeconds(int Nodes, int64_t Bytes) const {
  if (Nodes <= 1 || Bytes == 0)
    return 0.0;
  // Ring allreduce: 2(N-1) steps, each moving Bytes/N per link.
  double Steps = 2.0 * (Nodes - 1);
  return Steps * (LatencySec +
                  static_cast<double>(Bytes) / Nodes /
                      BandwidthBytesPerSec);
}

std::vector<double> runtime::layerFlops(const ModelSpec &Spec) {
  std::vector<double> Flops;
  Shape Cur = Spec.InputDims;
  std::vector<LayerAudit> Audit = auditSpec(Spec);
  for (size_t I = 0; I < Spec.Layers.size(); ++I) {
    const LayerSpec &L = Spec.Layers[I];
    const Shape &Out = Audit[I].OutDims;
    double F = 0;
    switch (L.K) {
    case LayerSpec::Kind::Conv:
      // 2 * output elements * window size MACs.
      F = 2.0 * Out.numElements() * Cur[0] * L.Kernel * L.Kernel;
      break;
    case LayerSpec::Kind::Fc:
      F = 2.0 * Out.numElements() * Cur.numElements();
      break;
    case LayerSpec::Kind::MaxPool:
    case LayerSpec::Kind::AvgPool:
      F = static_cast<double>(Out.numElements()) * L.Kernel * L.Kernel;
      break;
    case LayerSpec::Kind::Relu:
    case LayerSpec::Kind::Tanh:
    case LayerSpec::Kind::Sigmoid:
    case LayerSpec::Kind::Dropout:
    case LayerSpec::Kind::Add:
    case LayerSpec::Kind::Mul:
    case LayerSpec::Kind::Sub:
    case LayerSpec::Kind::Slice:
    case LayerSpec::Kind::Stack:
      F = static_cast<double>(Out.numElements());
      break;
    case LayerSpec::Kind::Lstm:
    case LayerSpec::Kind::Gru:
      // 2 MACs per tied parameter per timestep (number of inputs).
      F = 2.0 * Audit[I].Params *
          std::max<size_t>(size_t{1}, L.Inputs.size());
      break;
    case LayerSpec::Kind::Attention:
      // Q/K/V projections per timestep plus the T x T score and readout
      // interactions.
      F = 2.0 * Audit[I].Params * Out[0] +
          4.0 * Out[0] * Out[0] * Out[1];
      break;
    }
    Flops.push_back(F);
    Cur = Out;
  }
  // Classifier FC.
  Flops.push_back(2.0 * Spec.NumClasses * Cur.numElements());
  return Flops;
}

std::vector<LayerProfile>
runtime::estimateLayerProfiles(const ModelSpec &Spec, int64_t Batch,
                               double MeasuredFwdSec,
                               double MeasuredBwdSec) {
  (void)Batch; // times are already per iteration at this batch
  std::vector<double> Flops = layerFlops(Spec);
  std::vector<LayerAudit> Audit = auditSpec(Spec);
  double Total = 0;
  for (double F : Flops)
    Total += F;
  if (Total <= 0)
    reportFatalError("model has no measurable compute");

  const int64_t TileSize = 8; // the compiler's default tile extent
  std::vector<LayerProfile> Profiles;
  for (size_t I = 0; I < Flops.size(); ++I) {
    LayerProfile P;
    P.Name = Audit[I].Name;
    double Share = Flops[I] / Total;
    P.FwdSeconds = MeasuredFwdSec * Share;
    P.BwdSeconds = MeasuredBwdSec * Share;
    P.GradBytes = Audit[I].Params * static_cast<int64_t>(sizeof(float));
    // Spatial layers expose batch x tile parallelism; FC layers batch only.
    const Shape &Out = Audit[I].OutDims;
    P.TilesPerItem =
        Out.rank() >= 3 ? std::max<int64_t>(1, Out[1] / TileSize) : 1;
    Profiles.push_back(std::move(P));
  }
  return Profiles;
}

namespace {

/// Fraction of the machine kept busy by U parallel units on C cores under
/// a static schedule.
double loadBalance(int64_t Units, int Cores) {
  if (Units <= 0 || Cores <= 1)
    return 1.0;
  int64_t Rounds = (Units + Cores - 1) / Cores;
  return static_cast<double>(Units) /
         static_cast<double>(Rounds * Cores);
}

} // namespace

ClusterResult runtime::simulateIteration(
    const std::vector<LayerProfile> &Layers, const ClusterConfig &Config,
    int64_t PerNodeBatch, int64_t ProfileBatch) {
  assert(PerNodeBatch > 0 && ProfileBatch > 0 && "batches must be positive");
  double BatchRatio =
      static_cast<double>(PerNodeBatch) / static_cast<double>(ProfileBatch);
  auto LayerScale = [&](const LayerProfile &L) {
    return BatchRatio /
           loadBalance(PerNodeBatch * L.TilesPerItem, Config.CoresPerNode);
  };
  ClusterResult R;
  // Forward: pure compute.
  double T = 0;
  for (const LayerProfile &L : Layers)
    T += L.FwdSeconds * LayerScale(L);
  R.ComputeSeconds = T;

  // Backward: layers in reverse; each gradient's allreduce is issued when
  // its layer finishes and the (single, serialized) network channel is
  // free (MPI Iallreduce progressing one collective at a time).
  double NetFreeAt = 0.0;
  double LastCommEnd = 0.0;
  for (auto It = Layers.rbegin(); It != Layers.rend(); ++It) {
    T += It->BwdSeconds * LayerScale(*It);
    if (It->GradBytes == 0)
      continue;
    double Comm =
        Config.Network.allreduceSeconds(Config.Nodes, It->GradBytes);
    R.CommSeconds += Comm;
    double Start = Config.OverlapComm ? std::max(T, NetFreeAt)
                                      : 0.0; // collected below if not
    if (Config.OverlapComm) {
      NetFreeAt = Start + Comm;
      LastCommEnd = NetFreeAt;
    }
  }
  R.ComputeSeconds = T;

  if (Config.OverlapComm) {
    R.IterSeconds = std::max(T, LastCommEnd);
    R.ExposedCommSeconds = R.IterSeconds - T;
  } else {
    // Without overlap every allreduce serializes after backward.
    R.IterSeconds = T + R.CommSeconds;
    R.ExposedCommSeconds = R.CommSeconds;
  }
  return R;
}

double runtime::clusterThroughput(const std::vector<LayerProfile> &Layers,
                                  const ClusterConfig &Config,
                                  int64_t PerNodeBatch,
                                  int64_t ProfileBatch) {
  ClusterResult R =
      simulateIteration(Layers, Config, PerNodeBatch, ProfileBatch);
  return static_cast<double>(PerNodeBatch) * Config.Nodes / R.IterSeconds;
}
