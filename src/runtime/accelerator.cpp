//===- runtime/accelerator.cpp --------------------------------*- C++ -*-===//

#include "runtime/accelerator.h"

#include "support/error.h"

#include <algorithm>

using namespace latte;
using namespace latte::runtime;

HeterogeneousScheduler::HeterogeneousScheduler(HeterogeneousConfig C)
    : Config(std::move(C)) {
  if (Config.HostSecondsPerItem <= 0)
    reportFatalError("heterogeneous scheduler needs a measured host rate");
}

double HeterogeneousScheduler::deviceComputeSeconds(int D,
                                                    int64_t Items) const {
  const DeviceModel &Dev = Config.Devices[D];
  return Dev.LaunchOverheadSec +
         Items * Config.HostSecondsPerItem / Dev.SpeedFactor;
}

double HeterogeneousScheduler::transferSeconds(int D, int64_t Bytes) const {
  return static_cast<double>(Bytes) / Config.Devices[D].PcieBytesPerSec;
}

Schedule HeterogeneousScheduler::autotune(int64_t Batch) const {
  Schedule S;
  S.DeviceChunks.assign(Config.Devices.size(), 0);
  if (Config.Devices.empty()) {
    S.HostItems = Batch;
    return S;
  }
  // Start with the initial chunk per device, the rest on the host (§6.1).
  int64_t Assigned = 0;
  for (size_t D = 0; D < Config.Devices.size(); ++D) {
    S.DeviceChunks[D] = std::min<int64_t>(Config.InitialChunk,
                                          Batch - Assigned);
    Assigned += S.DeviceChunks[D];
  }
  S.HostItems = Batch - Assigned;

  // Linear search: grow the slowest-loaded device chunk while the device
  // still finishes before the host and items remain on the host.
  bool Progress = true;
  while (Progress && S.HostItems > 0) {
    Progress = false;
    for (size_t D = 0; D < Config.Devices.size() && S.HostItems > 0; ++D) {
      double DevTime = deviceComputeSeconds(static_cast<int>(D),
                                            S.DeviceChunks[D] + 1);
      double HostTime = (S.HostItems - 1) * Config.HostSecondsPerItem;
      if (DevTime <= HostTime) {
        ++S.DeviceChunks[D];
        --S.HostItems;
        Progress = true;
      }
    }
  }
  return S;
}

double HeterogeneousScheduler::iterationSeconds(const Schedule &S,
                                                bool FirstIteration) const {
  double HostTime = S.HostItems * Config.HostSecondsPerItem;
  double MaxUnit = HostTime;
  for (size_t D = 0; D < S.DeviceChunks.size(); ++D) {
    if (S.DeviceChunks[D] == 0)
      continue;
    double Compute =
        deviceComputeSeconds(static_cast<int>(D), S.DeviceChunks[D]);
    // Gradient return is not hidden (the paper's observed Xeon Phi
    // limiter); the input upload is hidden by double buffering after the
    // first iteration.
    double Upload =
        transferSeconds(static_cast<int>(D),
                        S.DeviceChunks[D] * Config.BytesPerItem);
    double GradReturn =
        transferSeconds(static_cast<int>(D), Config.GradBytes);
    double DevTime = Compute + GradReturn;
    if (FirstIteration || !Config.DoubleBuffering)
      DevTime += Upload;
    MaxUnit = std::max(MaxUnit, DevTime);
  }
  return MaxUnit;
}

ThroughputResult HeterogeneousScheduler::throughput(int64_t Batch) const {
  ThroughputResult R;
  R.Chosen = autotune(Batch);
  R.IterSeconds = iterationSeconds(R.Chosen, /*FirstIteration=*/false);
  R.ItemsPerSecond = static_cast<double>(Batch) / R.IterSeconds;
  return R;
}
