//===- engine/executor.cpp ------------------------------------*- C++ -*-===//

#include "engine/executor.h"

#include "compiler/codegen_cpp.h"
#include "kernels/elementwise.h"
#include "kernels/gemm.h"
#include "kernels/pooling.h"
#include "kernels/softmax.h"
#include "support/error.h"
#include "support/profile.h"

#include <cmath>

#ifdef LATTE_HAVE_OPENMP
#include <omp.h>
#endif

using namespace latte;
using namespace latte::engine;
using namespace latte::compiler;
using namespace latte::ir;

namespace {

/// Small scoped environment: loop variables and float locals. Lookup is a
/// linear scan — the vectors hold a handful of entries.
struct EnvImpl {
  std::vector<std::pair<std::string, int64_t>> IntVars;
  std::vector<std::pair<std::string, float>> FloatVars;
};

} // namespace

struct Executor::Env : EnvImpl {
  bool AllowParallel = false;

  int64_t lookupInt(const std::string &Name) const {
    for (auto It = IntVars.rbegin(); It != IntVars.rend(); ++It)
      if (It->first == Name)
        return It->second;
    reportFatalError("unbound loop variable '" + Name + "'");
  }
  float *lookupFloat(const std::string &Name) {
    for (auto It = FloatVars.rbegin(); It != FloatVars.rend(); ++It)
      if (It->first == Name)
        return &It->second;
    return nullptr;
  }
  const float *lookupFloat(const std::string &Name) const {
    return const_cast<Env *>(this)->lookupFloat(Name);
  }
};

Executor::Executor(Program TheProg, ExecOptions Opts)
    : Prog(std::move(TheProg)), Opts(Opts),
      DropoutRng(Opts.Seed ^ 0xd20b0a7) {
  // Storage: either one aligned arena carved up by the compiler's memory
  // plan, or (eager mode) one private region per alias root.
  PlanActive = !Opts.NoMemPlan && Prog.Plan.Valid;
  std::unordered_map<std::string, size_t> OwnerIndex;
  if (PlanActive) {
    // Over-allocate by one alignment quantum and align the base by hand.
    Arena.assign(static_cast<size_t>(Prog.Plan.ArenaBytes / 4 +
                                     Prog.Plan.Alignment / 4),
                 0.0f);
    uintptr_t Raw = reinterpret_cast<uintptr_t>(Arena.data());
    uintptr_t Mask = static_cast<uintptr_t>(Prog.Plan.Alignment) - 1;
    ArenaBase = reinterpret_cast<float *>((Raw + Mask) & ~Mask);
    if (prof::enabled()) {
      prof::count(prof::Counter::ArenaBytes, Prog.Plan.ArenaBytes);
      prof::count(prof::Counter::EagerBytes, Prog.Plan.EagerBytes);
    }
  } else {
    Storage.reserve(Prog.Buffers.size());
    int64_t EagerBytes = 0;
    for (const BufferInfo &B : Prog.Buffers) {
      if (!B.AliasOf.empty())
        continue;
      OwnerIndex[B.Name] = Storage.size();
      Storage.emplace_back(B.Dims);
      EagerBytes += B.Dims.numElements() * 4;
    }
    if (prof::enabled())
      prof::count(prof::Counter::EagerBytes, EagerBytes);
  }
  if (prof::enabled() && !Prog.Recomputes.empty()) {
    int64_t Flops = 0, Saved = 0;
    for (const RecomputeInfo &RI : Prog.Recomputes) {
      Flops += RI.Flops;
      Saved += RI.Bytes;
    }
    prof::count(prof::Counter::RecomputeFlops, Flops);
    // The bytes the plan no longer retains across the fwd/bwd boundary —
    // the memory half of the recompute trade (only realized when the
    // planned arena is active).
    if (PlanActive)
      prof::count(prof::Counter::RetainedBytesSaved, Saved);
  }
  for (const BufferInfo &B : Prog.Buffers) {
    BufferRT RT;
    RT.Dims = B.Dims;
    RT.Strides = B.Dims.strides();
    RT.Count = B.Dims.numElements();
    RT.ZeroOnForward = B.ZeroOnForward;
    RT.ZeroOnBackward = B.ZeroOnBackward;
    const BufferInfo *Root = Prog.resolveAlias(B.Name);
    if (!Root)
      reportFatalError("buffer '" + B.Name + "' has no resolvable storage");
    if (!Root->AliasOf.empty())
      reportFatalError("buffer '" + B.Name + "' aliases unknown '" +
                       Root->AliasOf + "'");
    if (Root->Dims.numElements() != RT.Count)
      reportFatalError("alias '" + B.Name + "' does not match the size of '" +
                       Root->Name + "'");
    if (PlanActive) {
      auto It = Prog.Plan.Offsets.find(Root->Name);
      if (It == Prog.Plan.Offsets.end())
        reportFatalError("memory plan has no offset for root '" +
                         Root->Name + "'");
      RT.Data = ArenaBase + It->second / 4;
    } else {
      RT.Data = Storage[OwnerIndex.at(Root->Name)].data();
    }
    Buffers[B.Name] = std::move(RT);
  }
  for (const IntBufferInfo &B : Prog.IntBuffers) {
    if (B.isStatic())
      IntBuffers[B.Name] = B.Entries;
    else
      IntBuffers[B.Name].assign(static_cast<size_t>(B.Count), 0);
  }
  // Honor the verified-program label invariant (analyze::verifyProgram,
  // program.task-labels): profiling attributes trace spans to units by
  // position, so a non-parallel label vector would mislabel every span.
  auto CheckLabels = [](const Stmt *Root, const std::vector<TaskLabel> &Labels,
                        const char *Which) {
    if (Labels.empty() || !Root)
      return; // hand-built programs carry no labels
    const auto *B = dyn_cast<BlockStmt>(Root);
    size_t Units = B ? B->stmts().size() : 1;
    if (Labels.size() != Units)
      reportFatalError(std::string(Which) +
                       " task labels are not parallel to the program units (" +
                       std::to_string(Labels.size()) + " labels, " +
                       std::to_string(Units) + " units)");
  };
  CheckLabels(Prog.Forward.get(), Prog.ForwardTasks, "forward");
  CheckLabels(Prog.Backward.get(), Prog.BackwardTasks, "backward");
  setupJit();
  initParams(Opts.Seed);
}

//===----------------------------------------------------------------------===//
// JIT integration
//===----------------------------------------------------------------------===//

namespace {

/// The kernel trampoline generated code calls back through (its address is
/// planted in LatteJitCtx::kernel; generated code never names it). Plain
/// function with the exact ABI signature, casting the opaque self pointer
/// back to the executor.
void latteJitKernelBridge(void *Self, int64_t Kind, float **FB, int32_t **IB,
                          const int64_t *IA, const double *FA,
                          const int64_t *EA) {
  static_cast<Executor *>(Self)->execKernelResolved(
      static_cast<KernelKind>(Kind), FB, IB, IA, FA, EA);
}

} // namespace

void Executor::setupJit() {
  if (!Prog.Jit || Opts.NoJit)
    return;
  if (!jit::available(&JitDiag))
    return;
  compiler::JitSource JS = compiler::generateJitSource(Prog);
  JitMod = jit::JitModule::getOrCreate(JS.Source, &JitDiag);
  if (!JitMod)
    return; // compile/load failed; JitDiag has the reason, interpret all
  auto Resolve = [&](const std::vector<compiler::JitTaskInfo> &Infos,
                     std::vector<jit::TaskFn> &Out) {
    for (const compiler::JitTaskInfo &Info : Infos)
      // A jittable task whose symbol is somehow absent falls back too.
      Out.push_back(Info.Jittable ? JitMod->symbol(Info.Symbol) : nullptr);
  };
  Resolve(JS.Forward, JitFwd);
  Resolve(JS.Backward, JitBwd);
  // Alias-resolved storage pointers in Program declaration order — the
  // indices generated code embeds. Heap storage (Arena / Storage / the
  // int-buffer vectors) is pointer-stable across Executor moves, so these
  // snapshots stay valid; only the views below are refreshed per pass.
  for (const BufferInfo &B : Prog.Buffers)
    CtxBufs.push_back(Buffers.at(B.Name).Data);
  for (const IntBufferInfo &B : Prog.IntBuffers)
    CtxIbufs.push_back(IntBuffers.at(B.Name).data());
  for (jit::TaskFn Fn : JitFwd)
    JitActive |= Fn != nullptr;
  for (jit::TaskFn Fn : JitBwd)
    JitActive |= Fn != nullptr;
  if (!JitActive && JitDiag.empty())
    JitDiag = "no jittable tasks in this program";
}

void Executor::refreshJitCtx() {
  JitCtx.self = this;
  JitCtx.bufs = CtxBufs.data();
  JitCtx.ibufs = CtxIbufs.data();
  JitCtx.par = 0;
  JitCtx.kernel = &latteJitKernelBridge;
}

int Executor::jitTaskCount() const {
  int N = 0;
  for (jit::TaskFn Fn : JitFwd)
    N += Fn != nullptr;
  for (jit::TaskFn Fn : JitBwd)
    N += Fn != nullptr;
  return N;
}

int Executor::jitFallbackCount() const {
  if (!JitActive)
    return 0;
  int N = 0;
  for (jit::TaskFn Fn : JitFwd)
    N += Fn == nullptr;
  for (jit::TaskFn Fn : JitBwd)
    N += Fn == nullptr;
  return N;
}

const Executor::BufferRT &Executor::buffer(const std::string &Name) const {
  auto It = Buffers.find(Name);
  if (It == Buffers.end())
    reportFatalError("unknown buffer '" + Name + "'");
  return It->second;
}

Executor::BufferRT &Executor::buffer(const std::string &Name) {
  return const_cast<BufferRT &>(
      static_cast<const Executor *>(this)->buffer(Name));
}

int32_t *Executor::intBuffer(const std::string &Name) {
  auto It = IntBuffers.find(Name);
  if (It == IntBuffers.end())
    reportFatalError("unknown index buffer '" + Name + "'");
  return It->second.data();
}

float *Executor::data(const std::string &Name) {
  return buffer(Name).Data;
}
const float *Executor::data(const std::string &Name) const {
  return buffer(Name).Data;
}
const Shape &Executor::shape(const std::string &Name) const {
  return buffer(Name).Dims;
}
int64_t Executor::size(const std::string &Name) const {
  return buffer(Name).Count;
}

void Executor::setInput(const Tensor &T) {
  if (Prog.DataBuffer.empty())
    reportFatalError("program has no data ensemble");
  writeBuffer(Prog.DataBuffer, T);
}

void Executor::setLabels(const Tensor &T) {
  if (Prog.LabelBuffer.empty())
    reportFatalError("program has no label ensemble");
  writeBuffer(Prog.LabelBuffer, T);
}

Tensor Executor::readBuffer(const std::string &Name) const {
  const BufferRT &B = buffer(Name);
  Tensor T(B.Dims);
  kernels::copy(T.data(), B.Data, B.Count);
  return T;
}

void Executor::writeBuffer(const std::string &Name, const Tensor &T) {
  BufferRT &B = buffer(Name);
  if (T.numElements() != B.Count)
    reportFatalError("writeBuffer('" + Name + "'): element count mismatch");
  kernels::copy(B.Data, T.data(), B.Count);
}

void Executor::initParams(uint64_t Seed) {
  Rng R(Seed);
  for (const BufferInfo &B : Prog.Buffers) {
    if (B.Role != BufferRole::Param || !B.AliasOf.empty())
      continue;
    BufferRT &RT = buffer(B.Name);
    Tensor View(B.Dims);
    switch (B.Init) {
    case core::FieldInitKind::Zero:
      View.zero();
      break;
    case core::FieldInitKind::Constant:
      View.fill(B.InitValue);
      break;
    case core::FieldInitKind::Xavier:
      R.fillXavier(View, B.FanIn > 0 ? B.FanIn : B.Dims.numElements());
      break;
    case core::FieldInitKind::Gaussian:
      R.fillGaussian(View, 0.0f, B.InitValue);
      break;
    }
    kernels::copy(RT.Data, View.data(), RT.Count);
  }
}

void Executor::shareParamsFrom(const Executor &Src) {
  // Collect this program's Param-role alias roots, then repoint the root
  // and every alias member at the source's storage. CtxBufs (the JIT's
  // buffer table snapshot) is refreshed in lockstep so generated code sees
  // the shared weights too.
  for (const BufferInfo &B : Prog.Buffers) {
    const BufferInfo *Root = Prog.resolveAlias(B.Name);
    if (!Root || Root->Role != BufferRole::Param)
      continue;
    auto It = Src.Buffers.find(B.Name);
    if (It == Src.Buffers.end())
      reportFatalError("shareParamsFrom: source executor has no parameter "
                       "buffer '" + B.Name + "'");
    BufferRT &Mine = buffer(B.Name);
    if (It->second.Count != Mine.Count)
      reportFatalError("shareParamsFrom: parameter '" + B.Name +
                       "' shape mismatch (" + std::to_string(Mine.Count) +
                       " vs " + std::to_string(It->second.Count) +
                       " elements)");
    Mine.Data = It->second.Data;
  }
  if (!CtxBufs.empty())
    for (size_t I = 0; I < Prog.Buffers.size(); ++I)
      CtxBufs[I] = Buffers.at(Prog.Buffers[I].Name).Data;
}

void Executor::forward() {
  // Deterministic mode: every forward pass draws the same dropout masks, so
  // repeated forwards over the same inputs are bitwise identical (finite
  // differencing and cross-variant comparisons rely on this).
  if (Opts.Deterministic)
    DropoutRng = Rng(Opts.Seed ^ 0xd20b0a7);
  if (PlanActive) {
    // Arena mode: only pinned/retained clears happen at pass top; interval
    // buffers are cleared lazily by execProgram (the plan's ZeroBefore
    // schedule) so the clear does not extend their live range.
    for (const std::string &Root : Prog.Plan.ZeroOnForwardPinned)
      kernels::zero(buffer(Root).Data, buffer(Root).Count);
  } else {
    for (const BufferInfo &B : Prog.Buffers)
      if (B.ZeroOnForward)
        kernels::zero(buffer(B.Name).Data, buffer(B.Name).Count);
  }
  Env E;
  E.AllowParallel = Opts.Parallel;
  const std::vector<jit::TaskFn> *Fns = JitActive ? &JitFwd : nullptr;
  if (JitActive)
    refreshJitCtx();
  if (Opts.Profile && prof::enabled()) {
    prof::ScopedPhase Phase("forward");
    prof::ScopedTimer Whole("forward");
    ProfActive = true;
    execProgram(Prog.Forward.get(), Prog.ForwardTasks, E, /*Profiled=*/true,
                /*GlobalBase=*/0, Fns);
    ProfActive = false;
    return;
  }
  if (PlanActive || JitActive) {
    execProgram(Prog.Forward.get(), Prog.ForwardTasks, E, /*Profiled=*/false,
                /*GlobalBase=*/0, Fns);
    return;
  }
  execStmt(Prog.Forward.get(), E);
}

void Executor::backward() {
  if (Prog.Inference || !Prog.Backward)
    reportFatalError(
        "backward() called on an inference-compiled program: it has no "
        "backward tasks, gradient buffers, or solver bindings (compiled "
        "via CompileOptions::Inference / compileForward). Recompile in "
        "training mode to run backward.");
  if (PlanActive) {
    for (const std::string &Root : Prog.Plan.ZeroOnBackwardPinned)
      kernels::zero(buffer(Root).Data, buffer(Root).Count);
  } else {
    for (const BufferInfo &B : Prog.Buffers)
      if (B.ZeroOnBackward)
        kernels::zero(buffer(B.Name).Data, buffer(B.Name).Count);
  }
  // Seed the loss gradient path: SoftmaxLossBwd reads probabilities
  // directly, so nothing to do here beyond zeroing.
  Env E;
  // Parallel backward races on parameter gradients; only the lossy mode
  // (§3.1) permits that. Synchronized mode executes the batch loop
  // serially, and deterministic mode always does.
  E.AllowParallel =
      Opts.Parallel && Opts.LossyGradients && !Opts.Deterministic;
  const int Base = Prog.Plan.NumForwardUnits;
  const std::vector<jit::TaskFn> *Fns = JitActive ? &JitBwd : nullptr;
  if (JitActive)
    refreshJitCtx();
  if (Opts.Profile && prof::enabled()) {
    prof::ScopedPhase Phase("backward");
    prof::ScopedTimer Whole("backward");
    ProfActive = true;
    execProgram(Prog.Backward.get(), Prog.BackwardTasks, E,
                /*Profiled=*/true, /*GlobalBase=*/Base, Fns);
    ProfActive = false;
    return;
  }
  if (PlanActive || JitActive) {
    execProgram(Prog.Backward.get(), Prog.BackwardTasks, E,
                /*Profiled=*/false, /*GlobalBase=*/Base, Fns);
    return;
  }
  execStmt(Prog.Backward.get(), E);
}

double Executor::lossValue() const {
  if (Prog.LossBuffer.empty())
    return 0.0;
  const BufferRT &B = buffer(Prog.LossBuffer);
  double Sum = 0;
  for (int64_t I = 0; I < B.Count; ++I)
    Sum += B.Data[I];
  return Sum / static_cast<double>(B.Count);
}

double Executor::accuracy() const {
  if (Prog.ProbBuffer.empty() || Prog.LabelBuffer.empty())
    return 0.0;
  const BufferRT &P = buffer(Prog.ProbBuffer);
  const BufferRT &L = buffer(Prog.LabelBuffer);
  int64_t Rows = Prog.BatchSize;
  int64_t Classes = P.Count / Rows;
  int64_t Correct = 0;
  for (int64_t R = 0; R < Rows; ++R) {
    const float *Row = P.Data + R * Classes;
    int64_t Best = 0;
    for (int64_t C = 1; C < Classes; ++C)
      if (Row[C] > Row[Best])
        Best = C;
    if (Best == static_cast<int64_t>(L.Data[R]))
      ++Correct;
  }
  return static_cast<double>(Correct) / static_cast<double>(Rows);
}

//===----------------------------------------------------------------------===//
// Interpretation
//===----------------------------------------------------------------------===//

int64_t Executor::evalInt(const Expr *Ex, Env &E) const {
  switch (Ex->kind()) {
  case Expr::Kind::IntConst:
    return cast<IntConstExpr>(Ex)->value();
  case Expr::Kind::Var:
    return E.lookupInt(cast<VarExpr>(Ex)->name());
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(Ex);
    int64_t L = evalInt(B->lhs(), E), R = evalInt(B->rhs(), E);
    switch (B->op()) {
    case BinaryOpKind::Add:
      return L + R;
    case BinaryOpKind::Sub:
      return L - R;
    case BinaryOpKind::Mul:
      return L * R;
    case BinaryOpKind::Div:
      assert(R != 0 && "integer division by zero in index expression");
      return L / R;
    case BinaryOpKind::Min:
      return std::min(L, R);
    case BinaryOpKind::Max:
      return std::max(L, R);
    }
    latteUnreachable("unknown binary op");
  }
  default:
    reportFatalError("expression is not integer-evaluable");
  }
}

float Executor::evalFloat(const Expr *Ex, Env &E) const {
  switch (Ex->kind()) {
  case Expr::Kind::IntConst:
    return static_cast<float>(cast<IntConstExpr>(Ex)->value());
  case Expr::Kind::FloatConst:
    return static_cast<float>(cast<FloatConstExpr>(Ex)->value());
  case Expr::Kind::Var: {
    const std::string &Name = cast<VarExpr>(Ex)->name();
    if (const float *F = E.lookupFloat(Name))
      return *F;
    return static_cast<float>(E.lookupInt(Name));
  }
  case Expr::Kind::Load: {
    const auto *L = cast<LoadExpr>(Ex);
    const BufferRT &B = buffer(L->buffer());
    assert(static_cast<int>(L->indices().size()) == B.Dims.rank() &&
           "load index rank mismatch");
    int64_t Off = 0;
    for (size_t I = 0; I < L->indices().size(); ++I)
      Off += evalInt(L->indices()[I].get(), E) * B.Strides[I];
    assert(Off >= 0 && Off < B.Count && "load out of bounds");
    return B.Data[Off];
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(Ex);
    float L = evalFloat(B->lhs(), E), R = evalFloat(B->rhs(), E);
    switch (B->op()) {
    case BinaryOpKind::Add:
      return L + R;
    case BinaryOpKind::Sub:
      return L - R;
    case BinaryOpKind::Mul:
      return L * R;
    case BinaryOpKind::Div:
      return L / R;
    case BinaryOpKind::Min:
      return std::min(L, R);
    case BinaryOpKind::Max:
      return std::max(L, R);
    }
    latteUnreachable("unknown binary op");
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(Ex);
    float V = evalFloat(U->operand(), E);
    switch (U->op()) {
    case UnaryOpKind::Neg:
      return -V;
    case UnaryOpKind::Exp:
      return std::exp(V);
    case UnaryOpKind::Log:
      return std::log(V);
    case UnaryOpKind::Tanh:
      return std::tanh(V);
    case UnaryOpKind::Sigmoid:
      return 1.0f / (1.0f + std::exp(-V));
    case UnaryOpKind::Sqrt:
      return std::sqrt(V);
    case UnaryOpKind::Abs:
      return std::fabs(V);
    }
    latteUnreachable("unknown unary op");
  }
  case Expr::Kind::Compare: {
    const auto *C = cast<CompareExpr>(Ex);
    float L = evalFloat(C->lhs(), E), R = evalFloat(C->rhs(), E);
    bool Result = false;
    switch (C->op()) {
    case CompareOpKind::LT:
      Result = L < R;
      break;
    case CompareOpKind::LE:
      Result = L <= R;
      break;
    case CompareOpKind::GT:
      Result = L > R;
      break;
    case CompareOpKind::GE:
      Result = L >= R;
      break;
    case CompareOpKind::EQ:
      Result = L == R;
      break;
    case CompareOpKind::NE:
      Result = L != R;
      break;
    }
    return Result ? 1.0f : 0.0f;
  }
  case Expr::Kind::Select: {
    const auto *S = cast<SelectExpr>(Ex);
    return evalFloat(S->cond(), E) != 0.0f
               ? evalFloat(S->trueValue(), E)
               : evalFloat(S->falseValue(), E);
  }
  }
  latteUnreachable("unknown expression kind");
}

namespace {

void applyAccum(float *Target, AccumKind Op, float V) {
  switch (Op) {
  case AccumKind::Assign:
    *Target = V;
    return;
  case AccumKind::AddAssign:
    *Target += V;
    return;
  case AccumKind::MulAssign:
    *Target *= V;
    return;
  case AccumKind::MaxAssign:
    *Target = std::max(*Target, V);
    return;
  case AccumKind::MinAssign:
    *Target = std::min(*Target, V);
    return;
  }
  latteUnreachable("unknown accumulation kind");
}

} // namespace

void Executor::execStmt(const Stmt *S, Env &E) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : cast<BlockStmt>(S)->stmts())
      execStmt(Child.get(), E);
    return;
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    int64_t Lo = evalInt(F->lo(), E);
    int64_t Extent = F->extent();
    bool Par = F->annotations().Parallel && E.AllowParallel;

    // Collapsed batch x tile parallel loop (§5.4.3).
    const TiledLoopStmt *CollapsedTile = nullptr;
    if (Par && F->annotations().Collapse == 2)
      if (const auto *Body = dyn_cast<BlockStmt>(F->body()))
        if (Body->stmts().size() == 1)
          CollapsedTile = dyn_cast<TiledLoopStmt>(Body->stmts()[0].get());

    if (Par && CollapsedTile) {
      int64_t Tiles = CollapsedTile->numTiles();
      int64_t Total = Extent * Tiles;
#ifdef LATTE_HAVE_OPENMP
#pragma omp parallel for schedule(static, 1)
#endif
      for (int64_t I = 0; I < Total; ++I) {
        Env Local = E;
        Local.AllowParallel = false;
        Local.IntVars.emplace_back(F->var(), Lo + I / Tiles);
        Local.IntVars.emplace_back(CollapsedTile->tileVar(), I % Tiles);
        execStmt(CollapsedTile->body(), Local);
      }
      return;
    }
    // Slice-rotated batch loop (compiler/rotate.h): iterations that share
    // a slice of a rotated buffer (equal n mod SliceModulus) must not run
    // concurrently, so the parallel dimension is the slice index and the
    // items within a slice run serially in batch order.
    if (int64_t SliceMod = F->annotations().SliceModulus;
        Par && SliceMod > 0 && Extent > 1) {
      int64_t NumSlices = std::min(SliceMod, Extent);
#ifdef LATTE_HAVE_OPENMP
#pragma omp parallel for schedule(static, 1)
#endif
      for (int64_t Sl = 0; Sl < NumSlices; ++Sl) {
        Env Local = E;
        Local.AllowParallel = false;
        Local.IntVars.emplace_back(F->var(), 0);
        for (int64_t I = Sl; I < Extent; I += SliceMod) {
          Local.IntVars.back().second = Lo + I;
          execStmt(F->body(), Local);
        }
      }
      return;
    }
    if (Par && Extent > 1) {
#ifdef LATTE_HAVE_OPENMP
#pragma omp parallel for schedule(static, 1)
#endif
      for (int64_t I = 0; I < Extent; ++I) {
        Env Local = E;
        Local.AllowParallel = false;
        Local.IntVars.emplace_back(F->var(), Lo + I);
        execStmt(F->body(), Local);
      }
      return;
    }
    E.IntVars.emplace_back(F->var(), 0);
    for (int64_t I = 0; I < Extent; ++I) {
      E.IntVars.back().second = Lo + I;
      execStmt(F->body(), E);
    }
    E.IntVars.pop_back();
    return;
  }
  case Stmt::Kind::TiledLoop: {
    const auto *T = cast<TiledLoopStmt>(S);
    E.IntVars.emplace_back(T->tileVar(), 0);
    for (int64_t I = 0; I < T->numTiles(); ++I) {
      E.IntVars.back().second = I;
      execStmt(T->body(), E);
    }
    E.IntVars.pop_back();
    return;
  }
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    if (evalFloat(If->cond(), E) != 0.0f)
      execStmt(If->thenStmt(), E);
    else
      execStmt(If->elseStmt(), E);
    return;
  }
  case Stmt::Kind::Store: {
    const auto *St = cast<StoreStmt>(S);
    BufferRT &B = buffer(St->buffer());
    assert(static_cast<int>(St->indices().size()) == B.Dims.rank() &&
           "store index rank mismatch");
    int64_t Off = 0;
    for (size_t I = 0; I < St->indices().size(); ++I)
      Off += evalInt(St->indices()[I].get(), E) * B.Strides[I];
    assert(Off >= 0 && Off < B.Count && "store out of bounds");
    applyAccum(B.Data + Off, St->op(), evalFloat(St->value(), E));
    return;
  }
  case Stmt::Kind::Decl: {
    const auto *D = cast<DeclStmt>(S);
    E.FloatVars.emplace_back(D->name(), evalFloat(D->init(), E));
    return;
  }
  case Stmt::Kind::AssignVar: {
    const auto *A = cast<AssignVarStmt>(S);
    float *Target = E.lookupFloat(A->name());
    if (!Target)
      reportFatalError("assignment to undeclared local '" + A->name() + "'");
    applyAccum(Target, A->op(), evalFloat(A->value(), E));
    return;
  }
  case Stmt::Kind::KernelCall:
    execKernel(cast<KernelCallStmt>(S), E);
    return;
  case Stmt::Kind::Barrier:
    return; // fusion metadata only
  }
  latteUnreachable("unknown statement kind");
}

void Executor::execProgram(const Stmt *Root,
                           const std::vector<compiler::TaskLabel> &Labels,
                           Env &E, bool Profiled, int GlobalBase,
                           const std::vector<jit::TaskFn> *Fns) {
  const auto *B = dyn_cast_if_present<const BlockStmt>(Root);
  if (!B) {
    if (Root)
      execStmt(Root, E);
    return;
  }
  if (Fns)
    JitCtx.par = E.AllowParallel ? 1 : 0;
  const std::vector<StmtPtr> &Stmts = B->stmts();
  for (size_t I = 0; I < Stmts.size(); ++I) {
    if (PlanActive) {
      // Lazy zeroing: interval-allocated ZeroOn* roots are cleared right
      // before their first referencing unit. Any buffer previously sharing
      // these bytes is already past its last use.
      auto It = Prog.Plan.ZeroBefore.find(GlobalBase + static_cast<int>(I));
      if (It != Prog.Plan.ZeroBefore.end())
        for (const std::string &Name : It->second) {
          BufferRT &RT = buffer(Name);
          kernels::zero(RT.Data, RT.Count);
        }
    }
    // JIT dispatch table: a non-null entry replaces interpretation of
    // this unit (kernels still run engine-side via the trampoline).
    jit::TaskFn Fn = Fns && I < Fns->size() ? (*Fns)[I] : nullptr;
    if (!Profiled) {
      if (Fn)
        Fn(&JitCtx);
      else
        execStmt(Stmts[I].get(), E);
      continue;
    }
    // Hand-built programs (engine tests) carry no labels; fall back to the
    // unit index.
    std::string Name = I < Labels.size() && !Labels[I].Name.empty()
                           ? Labels[I].Name
                           : "task#" + std::to_string(I);
    prof::ScopedTimer T(std::move(Name));
    if (Fn)
      Fn(&JitCtx);
    else
      execStmt(Stmts[I].get(), E);
    prof::count(prof::Counter::TasksExecuted, 1);
  }
}

void Executor::profileKernel(KernelKind Kind, const int64_t *IA) const {
  using prof::Counter;
  prof::count(Counter::KernelCalls, 1);
  switch (Kind) {
  case KernelKind::Sgemm: {
    // ints: {M, N, K, ...} — one multiply-add per inner-product element.
    uint64_t MNK = static_cast<uint64_t>(IA[0]) *
                   static_cast<uint64_t>(IA[1]) *
                   static_cast<uint64_t>(IA[2]);
    prof::count(Counter::GemmCalls, 1);
    prof::count(Counter::Flops, 2 * MNK);
    return;
  }
  case KernelKind::Zero:
    prof::count(Counter::BytesMoved, 4ull * IA[0]);
    return;
  case KernelKind::Copy:
    prof::count(Counter::BytesMoved, 8ull * IA[0]); // read + write
    return;
  case KernelKind::AddTo:
  case KernelKind::MulInto:
    prof::count(Counter::BytesMoved, 12ull * IA[0]); // 2 reads + write
    return;
  case KernelKind::MulAddTo:
    prof::count(Counter::BytesMoved, 16ull * IA[0]); // 3 reads + write
    return;
  case KernelKind::Scale:
    prof::count(Counter::BytesMoved, 8ull * IA[0]);
    return;
  case KernelKind::Gather2D:
    // ints: {Rows, Cols, ColCount} — value + index read, write per cell.
    prof::count(Counter::BytesMoved, 12ull * IA[0] * IA[2]);
    return;
  case KernelKind::ScatterAdd2D:
    prof::count(Counter::BytesMoved, 16ull * IA[0] * IA[2]);
    return;
  case KernelKind::ActFwdCols:
    // ints: {Op, Rows, Cols, ColCount} — read + write per cell.
    prof::count(Counter::BytesMoved, 8ull * IA[1] * IA[3]);
    return;
  case KernelKind::ActBwdCols:
    prof::count(Counter::BytesMoved, 16ull * IA[1] * IA[3]);
    return;
  case KernelKind::BiasAddCols:
    // ints: {Rows, Cols, ColCount} — value read + bias read + write.
    prof::count(Counter::BytesMoved, 12ull * IA[0] * IA[2]);
    return;
  default:
    return;
  }
}

void Executor::execKernel(const KernelCallStmt *K, Env &E) {
  // GradSyncHook needs the buffer's NAME (the hook callback signature),
  // which the resolved form below has dropped — handle it pre-resolution.
  // Such units are never JIT-compiled, so the resolved path can't see it.
  if (K->kernel() == KernelKind::GradSyncHook) {
    if (ProfActive)
      profileKernel(K->kernel(), K->intArgs().data());
    if (Hook_) {
      const KernelBufArg &A = K->bufs()[0];
      int64_t Off = A.Offset ? evalInt(A.Offset.get(), E) : 0;
      Hook_(A.Buffer, buffer(A.Buffer).Data + Off, K->intArgs()[0]);
    }
    return;
  }
  // Resolve every argument eagerly, then run the shared dispatch — the
  // same entry the JIT's kernel trampoline calls, so both paths are one
  // code path from here on (bitwise identity by construction).
  assert(K->bufs().size() <= static_cast<size_t>(jit::kMaxKernelBufs) &&
         "kernel has more buffer args than the resolved ABI carries");
  assert(K->exprArgs().size() <=
             static_cast<size_t>(jit::kMaxKernelExprArgs) &&
         "kernel has more expr args than the resolved ABI carries");
  float *FB[jit::kMaxKernelBufs] = {nullptr, nullptr, nullptr, nullptr};
  int32_t *IB[jit::kMaxKernelBufs] = {nullptr, nullptr, nullptr, nullptr};
  uint32_t IntMask = jit::kernelIntBufMask(K->kernel());
  for (size_t I = 0; I < K->bufs().size(); ++I) {
    const KernelBufArg &A = K->bufs()[I];
    int64_t Off = A.Offset ? evalInt(A.Offset.get(), E) : 0;
    if (IntMask & (1u << I))
      IB[I] = intBuffer(A.Buffer) + Off;
    else
      FB[I] = buffer(A.Buffer).Data + Off;
  }
  int64_t EA[jit::kMaxKernelExprArgs] = {0, 0};
  for (size_t I = 0; I < K->exprArgs().size(); ++I)
    EA[I] = evalInt(K->exprArgs()[I].get(), E);
  execKernelResolved(K->kernel(), FB, IB, K->intArgs().data(),
                     K->floatArgs().data(), EA);
}

void Executor::execKernelResolved(KernelKind Kind, float *const *FB,
                                  int32_t *const *IB, const int64_t *IA,
                                  const double *FA, const int64_t *EA) {
  if (ProfActive)
    profileKernel(Kind, IA);
  auto FloatArg = [&](size_t I) -> float * { return FB[I]; };
  auto IntArg = [&](size_t I) -> int32_t * { return IB[I]; };
  auto ExprArg = [&](size_t I) -> int64_t { return EA[I]; };

  switch (Kind) {
  case KernelKind::Zero:
    kernels::zero(FloatArg(0), IA[0]);
    return;
  case KernelKind::Copy:
    kernels::copy(FloatArg(0), FloatArg(1), IA[0]);
    return;
  case KernelKind::AddTo:
    kernels::addTo(FloatArg(0), FloatArg(1), IA[0]);
    return;
  case KernelKind::MulInto:
    kernels::mulInto(FloatArg(0), FloatArg(1), FloatArg(2), IA[0]);
    return;
  case KernelKind::MulAddTo:
    kernels::mulAddTo(FloatArg(0), FloatArg(1), FloatArg(2), IA[0]);
    return;
  case KernelKind::Scale:
    kernels::scale(FloatArg(0), static_cast<float>(FA[0]), IA[0]);
    return;
  case KernelKind::Sgemm: {
    // ints: {M, N, K, LdA, LdB, LdC, TransA, TransB, Accumulate}
    auto Gemm = Opts.VectorKernels ? kernels::sgemm : kernels::sgemmNaive;
    Gemm(IA[6] != 0, IA[7] != 0, IA[0], IA[1], IA[2], FloatArg(0), IA[3],
         FloatArg(1), IA[4], FloatArg(2), IA[5], IA[8] != 0);
    return;
  }
  case KernelKind::Gather2D: {
    // ints: {Rows, Cols, ColCount}; exprs: {ColBegin}
    int64_t Rows = IA[0], Cols = IA[1], Cnt = IA[2], Cb = ExprArg(0);
    float *Dst = FloatArg(0);
    const float *Src = FloatArg(1);
    const int32_t *Table = IntArg(2);
    auto GatherFn =
        Opts.VectorKernels ? kernels::gather : kernels::gatherScalar;
    for (int64_t R = 0; R < Rows; ++R)
      GatherFn(Dst + R * Cols + Cb, Src, Table + R * Cols + Cb, Cnt);
    return;
  }
  case KernelKind::ScatterAdd2D: {
    int64_t Rows = IA[0], Cols = IA[1], Cnt = IA[2], Cb = ExprArg(0);
    float *Dst = FloatArg(0);
    const float *Src = FloatArg(1);
    const int32_t *Table = IntArg(2);
    for (int64_t R = 0; R < Rows; ++R)
      kernels::scatterAdd(Dst, Src + R * Cols + Cb, Table + R * Cols + Cb,
                          Cnt);
    return;
  }
  case KernelKind::ActFwdCols: {
    // ints: {Op, Rows, Cols, ColCount}; exprs: {ColBegin}
    auto Op = static_cast<ActOpKind>(IA[0]);
    int64_t Rows = IA[1], Cols = IA[2], Cnt = IA[3], Cb = ExprArg(0);
    float *Dst = FloatArg(0);
    const float *Src = FloatArg(1);
    for (int64_t R = 0; R < Rows; ++R) {
      float *D = Dst + R * Cols + Cb;
      const float *Sp = Src + R * Cols + Cb;
      switch (Op) {
      case ActOpKind::Relu:
        (Opts.VectorKernels ? kernels::reluFwd : kernels::reluFwdScalar)(
            D, Sp, Cnt);
        break;
      case ActOpKind::Sigmoid:
        kernels::sigmoidFwd(D, Sp, Cnt);
        break;
      case ActOpKind::Tanh:
        kernels::tanhFwd(D, Sp, Cnt);
        break;
      }
    }
    return;
  }
  case KernelKind::ActBwdCols: {
    // ints: {Op, Rows, Cols, ColCount, InPlace}; exprs: {ColBegin}
    auto Op = static_cast<ActOpKind>(IA[0]);
    int64_t Rows = IA[1], Cols = IA[2], Cnt = IA[3], Cb = ExprArg(0);
    bool InPlace = IA[4] != 0;
    float *DstG = FloatArg(0);
    const float *OutG = FloatArg(1);
    const float *Val = FloatArg(2);
    for (int64_t R = 0; R < Rows; ++R) {
      int64_t Base = R * Cols + Cb;
      float *Dg = DstG + Base;
      const float *Og = OutG + Base;
      const float *V = Val + Base;
      switch (Op) {
      case ActOpKind::Relu:
        if (InPlace) {
          for (int64_t I = 0; I < Cnt; ++I)
            Dg[I] = V[I] > 0.0f ? Og[I] : 0.0f;
        } else {
          (Opts.VectorKernels ? kernels::reluBwd
                              : kernels::reluBwdScalar)(Dg, Og, V, Cnt);
        }
        break;
      case ActOpKind::Sigmoid:
        for (int64_t I = 0; I < Cnt; ++I) {
          float D = Og[I] * V[I] * (1.0f - V[I]);
          Dg[I] = InPlace ? D : Dg[I] + D;
        }
        break;
      case ActOpKind::Tanh:
        for (int64_t I = 0; I < Cnt; ++I) {
          float D = Og[I] * (1.0f - V[I] * V[I]);
          Dg[I] = InPlace ? D : Dg[I] + D;
        }
        break;
      }
    }
    return;
  }
  case KernelKind::BiasAddCols: {
    // ints: {Rows, Cols, ColCount}; exprs: {ColBegin}
    int64_t Rows = IA[0], Cols = IA[1], Cnt = IA[2], Cb = ExprArg(0);
    float *Dst = FloatArg(0);
    const float *Bias = FloatArg(1);
    for (int64_t R = 0; R < Rows; ++R)
      kernels::addScalar(Dst + R * Cols + Cb, Bias[R], Cnt);
    return;
  }
  case KernelKind::BiasAddPerRow: {
    int64_t Rows = IA[0], Cols = IA[1];
    float *Dst = FloatArg(0);
    const float *Bias = FloatArg(1);
    for (int64_t R = 0; R < Rows; ++R)
      kernels::addTo(Dst + R * Cols, Bias, Cols);
    return;
  }
  case KernelKind::RowSumAdd: {
    int64_t Rows = IA[0], Cols = IA[1];
    float *Dst = FloatArg(0);
    const float *Src = FloatArg(1);
    for (int64_t R = 0; R < Rows; ++R)
      Dst[R] += kernels::sum(Src + R * Cols, Cols);
    return;
  }
  case KernelKind::ColSumAdd: {
    int64_t Rows = IA[0], Cols = IA[1];
    float *Dst = FloatArg(0);
    const float *Src = FloatArg(1);
    for (int64_t R = 0; R < Rows; ++R)
      kernels::addTo(Dst, Src + R * Cols, Cols);
    return;
  }
  case KernelKind::Im2ColRows:
  case KernelKind::Col2ImRows: {
    kernels::ConvGeometry G;
    G.Channels = IA[0];
    G.Height = IA[1];
    G.Width = IA[2];
    G.KernelH = G.KernelW = IA[3];
    G.StrideH = G.StrideW = IA[4];
    G.PadH = G.PadW = IA[5];
    int64_t Rc = IA[6], Rb = ExprArg(0);
    if (Kind == KernelKind::Im2ColRows)
      kernels::im2colRows(FloatArg(1), G, FloatArg(0), Rb, Rc);
    else
      kernels::col2imRows(FloatArg(1), G, FloatArg(0), Rb, Rc);
    return;
  }
  case KernelKind::MaxPoolFwdRows:
  case KernelKind::MaxPoolBwdRows:
  case KernelKind::AvgPoolFwdRows:
  case KernelKind::AvgPoolBwdRows: {
    // ints: {C, InH, InW, K, S, Pad, RowCount}; exprs: {RowBegin}
    kernels::ConvGeometry G;
    G.Channels = IA[0];
    G.Height = IA[1];
    G.Width = IA[2];
    G.KernelH = G.KernelW = IA[3];
    G.StrideH = G.StrideW = IA[4];
    G.PadH = G.PadW = IA[5];
    int64_t Rc = IA[6], Rb = ExprArg(0);
    switch (Kind) {
    case KernelKind::MaxPoolFwdRows:
      kernels::maxPoolFwdRows(FloatArg(1), G, FloatArg(0), IntArg(2), Rb,
                              Rc);
      return;
    case KernelKind::MaxPoolBwdRows:
      kernels::maxPoolBwdRows(FloatArg(1), G, IntArg(2), FloatArg(0), Rb,
                              Rc);
      return;
    case KernelKind::AvgPoolFwdRows:
      kernels::avgPoolFwdRows(FloatArg(1), G, FloatArg(0), Rb, Rc);
      return;
    case KernelKind::AvgPoolBwdRows:
      kernels::avgPoolBwdRows(FloatArg(1), G, FloatArg(0), Rb, Rc);
      return;
    default:
      latteUnreachable("pool kernel dispatch");
    }
  }
  case KernelKind::SoftmaxFwd: {
    int64_t Rows = IA[0], Classes = IA[1];
    float *Dst = FloatArg(0);
    const float *Src = FloatArg(1);
    for (int64_t R = 0; R < Rows; ++R)
      kernels::softmaxFwd(Dst + R * Classes, Src + R * Classes, Classes);
    return;
  }
  case KernelKind::SoftmaxLossFwd: {
    int64_t Rows = IA[0], Classes = IA[1];
    float *Prob = FloatArg(0);
    const float *Src = FloatArg(1);
    const float *Labels = FloatArg(2);
    float *Loss = FloatArg(3);
    for (int64_t R = 0; R < Rows; ++R) {
      kernels::softmaxFwd(Prob + R * Classes, Src + R * Classes, Classes);
      Loss[R] = kernels::crossEntropyLoss(Prob + R * Classes, Classes,
                                          static_cast<int64_t>(Labels[R]));
    }
    return;
  }
  case KernelKind::SoftmaxLossBwd: {
    int64_t Rows = IA[0], Classes = IA[1];
    float Scale = static_cast<float>(FA[0]);
    float *Grad = FloatArg(0);
    const float *Prob = FloatArg(1);
    const float *Labels = FloatArg(2);
    for (int64_t R = 0; R < Rows; ++R)
      kernels::softmaxLossBwd(Grad + R * Classes, Prob + R * Classes,
                              Classes, static_cast<int64_t>(Labels[R]),
                              Scale);
    return;
  }
  case KernelKind::SoftmaxBwd: {
    int64_t Rows = IA[0], Classes = IA[1];
    float *Gin = FloatArg(0);
    const float *Og = FloatArg(1);
    const float *P = FloatArg(2);
    for (int64_t R = 0; R < Rows; ++R) {
      const float *Ogr = Og + R * Classes;
      const float *Pr = P + R * Classes;
      float Dot = 0.0f;
      for (int64_t C = 0; C < Classes; ++C)
        Dot += Ogr[C] * Pr[C];
      float *G = Gin + R * Classes;
      for (int64_t C = 0; C < Classes; ++C)
        G[C] += Pr[C] * (Ogr[C] - Dot);
    }
    return;
  }
  case KernelKind::DropoutMask: {
    int64_t Count = IA[0];
    float Keep = static_cast<float>(FA[0]);
    float *Mask = FloatArg(0);
    float Inv = Keep > 0.0f ? 1.0f / Keep : 0.0f;
    for (int64_t I = 0; I < Count; ++I)
      Mask[I] = DropoutRng.uniform() < Keep ? Inv : 0.0f;
    return;
  }
  case KernelKind::GradSyncHook:
    // Needs the buffer name; execKernel intercepts it before resolution
    // and the JIT never compiles units containing it.
    return;
  }
  latteUnreachable("unknown kernel kind");
}
