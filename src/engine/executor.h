//===- engine/executor.h - Runs compiled programs --------------*- C++ -*-===//
///
/// \file
/// The execution engine: allocates a compiled Program's buffers (honoring
/// the aliasing the shared-variable analysis set up), initializes
/// parameters, and runs the forward/backward IR. Kernel-call statements
/// dispatch into src/kernels at native speed; anything the pattern matchers
/// left as loop nests is interpreted (the general fallback for custom
/// neuron types).
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_ENGINE_EXECUTOR_H
#define LATTE_ENGINE_EXECUTOR_H

#include "compiler/program.h"
#include "jit/jit_backend.h"
#include "support/rng.h"
#include "support/tensor.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace latte {
namespace engine {

/// Runtime options (the engine-side halves of the compile-time switches).
struct ExecOptions {
  /// Use the vectorized kernel variants (GEMM blocking, vector gathers).
  /// Off = the scalar reference kernels, for the Figure 13 ablation.
  bool VectorKernels = true;
  /// Honor parallel loop annotations with OpenMP.
  bool Parallel = true;
  /// Allow racing (lossy) parameter-gradient accumulation in parallel
  /// backward loops (§3.1 / Project Adam-style). When false the engine
  /// serializes the backward batch loop instead — the "synchronized
  /// reduction" mode, trading performance for determinism.
  bool LossyGradients = false;
  /// Fully reproducible execution, used by the verification tooling
  /// (verify::runLattice / verify::gradCheck): the dropout RNG is re-seeded
  /// at the top of every forward pass (so repeated forwards with identical
  /// inputs produce bitwise-identical outputs, a precondition for finite
  /// differencing), and LossyGradients is ignored in backward (no racing
  /// accumulation). Race-free parallel forward loops are unaffected.
  bool Deterministic = false;
  /// Record per-task execution spans and kernel counters into the global
  /// profiler (support/profile.h). Off by default; when off (or when the
  /// profiler is globally disabled) the engine takes the uninstrumented
  /// path and produces bitwise-identical results at unmeasurable extra
  /// cost. Enable together with prof::Profiler::setEnabled(true).
  bool Profile = false;
  /// Ignore the compiler's MemoryPlan and allocate every buffer eagerly
  /// (one private storage region per alias root), exactly as before the
  /// planner existed. The differential baseline for the memory planner:
  /// every buffer stays readable after a run. Verification tooling
  /// (verify::runLattice) sets this — it inspects interval-allocated
  /// gradients whose bytes the plan legitimately reuses.
  bool NoMemPlan = false;
  /// Ignore Program::Jit and interpret everything — the differential
  /// baseline for the JIT backend, and an escape hatch for environments
  /// where compiling/dlopening at runtime is unwanted. (jit::available()
  /// also gates globally: LATTE_JIT=0 and sanitizer builds disable it.)
  bool NoJit = false;
  uint64_t Seed = 0x5eed;
};

/// Callback invoked by GradSyncHook kernel calls: (buffer name, data,
/// element count). Used by the distributed runtime to start asynchronous
/// gradient reductions as soon as a gradient is ready (§5.3).
using GradHook =
    std::function<void(const std::string &, float *, int64_t)>;

class Executor {
public:
  /// Takes ownership of the compiled program (so `Executor(compile(Net))`
  /// is safe).
  explicit Executor(compiler::Program Prog, ExecOptions Opts = {});

  const compiler::Program &program() const { return Prog; }
  const ExecOptions &options() const { return Opts; }

  // --- buffer access ------------------------------------------------------

  /// Raw storage of \p Name (aliases resolved). Fatal if unknown.
  float *data(const std::string &Name);
  const float *data(const std::string &Name) const;
  /// Logical shape of \p Name.
  const Shape &shape(const std::string &Name) const;
  /// Element count of \p Name.
  int64_t size(const std::string &Name) const;

  /// Copies \p T into the program's primary data buffer (shapes' element
  /// counts must match).
  void setInput(const Tensor &T);
  /// Copies \p T into the label buffer.
  void setLabels(const Tensor &T);
  /// Copies a buffer out into a Tensor (for inspection/tests).
  Tensor readBuffer(const std::string &Name) const;
  /// Overwrites buffer \p Name from \p T.
  void writeBuffer(const std::string &Name, const Tensor &T);

  // --- execution ----------------------------------------------------------

  /// Re-initializes all parameters from \p Seed (Xavier / Gaussian /
  /// constant per the compiler's declarations).
  void initParams(uint64_t Seed);

  /// Repoints every Param-role buffer at \p Src's storage so this executor
  /// reads the exact same weight bytes (pointer-level sharing, not a copy).
  /// The programs must declare identically-shaped parameters under the same
  /// names — the serving runtime guarantees this by cloning all replica
  /// programs of one batch-size family from the same compile cache and
  /// compiling every batch size from the same net builder. \p Src must
  /// outlive this executor, and neither side may call initParams afterwards
  /// (the weights are frozen, which inference compilation enforces by
  /// having no solver bindings to update them).
  void shareParamsFrom(const Executor &Src);

  void forward();
  /// Fatal on inference-compiled programs (Program::Inference — no
  /// backward tasks exist); recompile without CompileOptions::Inference to
  /// train.
  void backward();

  /// Mean of the loss buffer after a forward pass (0 when the program has
  /// no loss ensemble).
  double lossValue() const;

  /// Top-1 accuracy of the probability buffer against the label buffer.
  double accuracy() const;

  void setGradHook(GradHook Hook) { Hook_ = std::move(Hook); }

  // --- JIT backend --------------------------------------------------------

  /// True when a JIT module is loaded and at least one task dispatches
  /// through it (Program::Jit set, jit::available(), compile succeeded).
  bool jitActive() const { return JitActive; }
  /// Why the JIT is not (fully) active: unavailability reason or the
  /// compile/dlopen diagnostic. Empty when nothing went wrong.
  const std::string &jitDiagnostic() const { return JitDiag; }
  /// Tasks dispatched through the loaded module (both passes).
  int jitTaskCount() const;
  /// Tasks that fall back to the interpreter although the JIT is active.
  int jitFallbackCount() const;
  /// Content hash of the loaded module ("" when none).
  std::string jitModuleHash() const { return JitMod ? JitMod->hash() : ""; }

  /// Kernel dispatch over pre-resolved arguments — the target the JIT's
  /// kernel trampoline re-enters (public for the bridge only). \p FB /
  /// \p IB are the float / int32 buffer pointers by argument position
  /// (jit::kernelIntBufMask decides which side each position uses), \p IA
  /// the static int args, \p FA the static float args, \p EA the evaluated
  /// index-expression args. Runs the exact same kernels as the
  /// interpreter; GradSyncHook is handled before resolution and must not
  /// reach here.
  void execKernelResolved(ir::KernelKind Kind, float *const *FB,
                          int32_t *const *IB, const int64_t *IA,
                          const double *FA, const int64_t *EA);

private:
  struct BufferRT {
    float *Data = nullptr;
    Shape Dims;
    std::vector<int64_t> Strides;
    int64_t Count = 0;
    bool ZeroOnForward = false;
    bool ZeroOnBackward = false;
  };

  struct Env; // loop variables + scalar locals

  void execStmt(const ir::Stmt *S, Env &E);
  void execKernel(const ir::KernelCallStmt *K, Env &E);
  /// Unit-at-a-time driver for the top-level block: interleaves the memory
  /// plan's lazy zero schedule between units (arena mode) and, when
  /// \p Profiled, wraps each unit in a ScopedTimer named by the compiler's
  /// TaskLabels. \p GlobalBase maps local unit indices onto the plan's
  /// global timeline (0 for forward, NumForwardUnits for backward).
  /// \p Fns, when non-null, is the JIT dispatch table parallel to the
  /// units: a non-null entry runs instead of interpreting that unit.
  void execProgram(const ir::Stmt *Root,
                   const std::vector<compiler::TaskLabel> &Labels, Env &E,
                   bool Profiled, int GlobalBase,
                   const std::vector<jit::TaskFn> *Fns);
  /// Attributes one kernel call to the profiler's counters.
  void profileKernel(ir::KernelKind Kind, const int64_t *IA) const;
  /// Compiles/loads the JIT module and builds the dispatch tables; any
  /// failure leaves JitActive false with the reason in JitDiag.
  void setupJit();
  /// Repoints JitCtx at this object (self / buffer tables / trampoline);
  /// called at the top of each pass so moved Executors stay valid.
  void refreshJitCtx();
  float evalFloat(const ir::Expr *Ex, Env &E) const;
  int64_t evalInt(const ir::Expr *Ex, Env &E) const;

  const BufferRT &buffer(const std::string &Name) const;
  BufferRT &buffer(const std::string &Name);
  int32_t *intBuffer(const std::string &Name);

  compiler::Program Prog;
  ExecOptions Opts;
  /// True only while a profiled forward/backward is in flight (gates the
  /// per-kernel counter hooks so the default path pays nothing).
  bool ProfActive = false;
  /// True when buffers are views into Arena (a valid plan and the option
  /// allows it); false = eager per-root Storage.
  bool PlanActive = false;
  std::vector<float> Arena;    ///< owning storage (arena mode)
  float *ArenaBase = nullptr;  ///< 64-byte-aligned base inside Arena
  std::vector<Tensor> Storage; ///< owning storage (eager mode)
  std::unordered_map<std::string, BufferRT> Buffers;
  std::unordered_map<std::string, std::vector<int32_t>> IntBuffers;
  Rng DropoutRng;
  GradHook Hook_;

  // --- JIT state (all empty/false when the backend is off) ---------------
  bool JitActive = false;
  std::string JitDiag;
  std::shared_ptr<jit::JitModule> JitMod; ///< shared across executors
  std::vector<jit::TaskFn> JitFwd;  ///< per forward unit; null = interpret
  std::vector<jit::TaskFn> JitBwd;  ///< per backward unit
  std::vector<float *> CtxBufs;     ///< Program::Buffers order
  std::vector<int32_t *> CtxIbufs;  ///< Program::IntBuffers order
  LatteJitCtx JitCtx = {};
};

} // namespace engine
} // namespace latte

#endif // LATTE_ENGINE_EXECUTOR_H
