//===- ir/visitor.cpp -----------------------------------------*- C++ -*-===//

#include "ir/visitor.h"

#include "ir/builder.h"
#include "support/error.h"

using namespace latte;
using namespace latte::ir;

void ir::walkExprs(const Expr *E,
                   const std::function<void(const Expr *)> &Fn) {
  if (!E)
    return;
  Fn(E);
  switch (E->kind()) {
  case Expr::Kind::IntConst:
  case Expr::Kind::FloatConst:
  case Expr::Kind::Var:
    return;
  case Expr::Kind::Load:
    for (const ExprPtr &I : cast<LoadExpr>(E)->indices())
      walkExprs(I.get(), Fn);
    return;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    walkExprs(B->lhs(), Fn);
    walkExprs(B->rhs(), Fn);
    return;
  }
  case Expr::Kind::Unary:
    walkExprs(cast<UnaryExpr>(E)->operand(), Fn);
    return;
  case Expr::Kind::Compare: {
    const auto *C = cast<CompareExpr>(E);
    walkExprs(C->lhs(), Fn);
    walkExprs(C->rhs(), Fn);
    return;
  }
  case Expr::Kind::Select: {
    const auto *S = cast<SelectExpr>(E);
    walkExprs(S->cond(), Fn);
    walkExprs(S->trueValue(), Fn);
    walkExprs(S->falseValue(), Fn);
    return;
  }
  }
  latteUnreachable("unknown expression kind");
}

void ir::walkStmts(const Stmt *S, const std::function<void(const Stmt *)> &Fn) {
  // Delegate to the mutable variant; the callback only sees const pointers.
  walkStmts(const_cast<Stmt *>(S),
            [&Fn](Stmt *Child) { Fn(Child); });
}

void ir::walkStmts(Stmt *S, const std::function<void(Stmt *)> &Fn) {
  if (!S)
    return;
  Fn(S);
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (StmtPtr &Child : cast<BlockStmt>(S)->stmts())
      walkStmts(Child.get(), Fn);
    return;
  case Stmt::Kind::For:
    walkStmts(cast<ForStmt>(S)->body(), Fn);
    return;
  case Stmt::Kind::TiledLoop:
    walkStmts(cast<TiledLoopStmt>(S)->body(), Fn);
    return;
  case Stmt::Kind::If: {
    auto *If = cast<IfStmt>(S);
    walkStmts(If->thenStmt(), Fn);
    walkStmts(If->elseStmt(), Fn);
    return;
  }
  case Stmt::Kind::Store:
  case Stmt::Kind::Decl:
  case Stmt::Kind::AssignVar:
  case Stmt::Kind::KernelCall:
  case Stmt::Kind::Barrier:
    return;
  }
  latteUnreachable("unknown statement kind");
}

void ir::walkExprsInStmt(const Stmt *S,
                         const std::function<void(const Expr *)> &Fn) {
  walkStmts(S, [&Fn](const Stmt *Child) {
    switch (Child->kind()) {
    case Stmt::Kind::For:
      walkExprs(cast<ForStmt>(Child)->lo(), Fn);
      return;
    case Stmt::Kind::If:
      walkExprs(cast<IfStmt>(Child)->cond(), Fn);
      return;
    case Stmt::Kind::Store: {
      const auto *St = cast<StoreStmt>(Child);
      for (const ExprPtr &I : St->indices())
        walkExprs(I.get(), Fn);
      walkExprs(St->value(), Fn);
      return;
    }
    case Stmt::Kind::Decl:
      walkExprs(cast<DeclStmt>(Child)->init(), Fn);
      return;
    case Stmt::Kind::AssignVar:
      walkExprs(cast<AssignVarStmt>(Child)->value(), Fn);
      return;
    case Stmt::Kind::KernelCall: {
      const auto *K = cast<KernelCallStmt>(Child);
      for (const KernelBufArg &B : K->bufs())
        if (B.Offset)
          walkExprs(B.Offset.get(), Fn);
      for (const ExprPtr &E : K->exprArgs())
        walkExprs(E.get(), Fn);
      return;
    }
    case Stmt::Kind::Block:
    case Stmt::Kind::TiledLoop:
    case Stmt::Kind::Barrier:
      return;
    }
    latteUnreachable("unknown statement kind");
  });
}

ExprPtr ir::rewriteExpr(ExprPtr E,
                        const std::function<ExprPtr(const Expr *)> &Fn) {
  if (!E)
    return E;
  // Rewrite children first (bottom-up).
  switch (E->kind()) {
  case Expr::Kind::IntConst:
  case Expr::Kind::FloatConst:
  case Expr::Kind::Var:
    break;
  case Expr::Kind::Load: {
    auto *L = cast<LoadExpr>(E.get());
    for (ExprPtr &I : L->indices())
      I = rewriteExpr(std::move(I), Fn);
    break;
  }
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E.get());
    ExprPtr L = rewriteExpr(B->takeLhs(), Fn);
    ExprPtr R = rewriteExpr(B->takeRhs(), Fn);
    E = binary(B->op(), std::move(L), std::move(R));
    break;
  }
  case Expr::Kind::Unary: {
    auto *U = cast<UnaryExpr>(E.get());
    E = unary(U->op(), rewriteExpr(U->operand()->clone(), Fn));
    break;
  }
  case Expr::Kind::Compare: {
    auto *C = cast<CompareExpr>(E.get());
    E = compare(C->op(), rewriteExpr(C->lhs()->clone(), Fn),
                rewriteExpr(C->rhs()->clone(), Fn));
    break;
  }
  case Expr::Kind::Select: {
    auto *S = cast<SelectExpr>(E.get());
    E = select(rewriteExpr(S->cond()->clone(), Fn),
               rewriteExpr(S->trueValue()->clone(), Fn),
               rewriteExpr(S->falseValue()->clone(), Fn));
    break;
  }
  }
  if (ExprPtr Replacement = Fn(E.get()))
    return Replacement;
  return E;
}

void ir::rewriteExprsInStmt(Stmt *S,
                            const std::function<ExprPtr(const Expr *)> &Fn) {
  walkStmts(S, [&Fn](Stmt *Child) {
    switch (Child->kind()) {
    case Stmt::Kind::For: {
      auto *F = cast<ForStmt>(Child);
      F->setLo(rewriteExpr(F->lo()->clone(), Fn));
      return;
    }
    case Stmt::Kind::Store: {
      auto *St = cast<StoreStmt>(Child);
      for (ExprPtr &I : St->indices())
        I = rewriteExpr(std::move(I), Fn);
      St->setValue(rewriteExpr(St->takeValue(), Fn));
      return;
    }
    case Stmt::Kind::Decl: {
      auto *D = cast<DeclStmt>(Child);
      D->setInit(rewriteExpr(D->takeInit(), Fn));
      return;
    }
    case Stmt::Kind::AssignVar: {
      auto *A = cast<AssignVarStmt>(Child);
      A->setValue(rewriteExpr(A->takeValue(), Fn));
      return;
    }
    case Stmt::Kind::If: {
      auto *If = cast<IfStmt>(Child);
      If->setCond(rewriteExpr(If->takeCond(), Fn));
      return;
    }
    case Stmt::Kind::KernelCall: {
      auto *K = cast<KernelCallStmt>(Child);
      for (KernelBufArg &B : K->bufs())
        if (B.Offset)
          B.Offset = rewriteExpr(std::move(B.Offset), Fn);
      for (ExprPtr &E : K->exprArgs())
        E = rewriteExpr(std::move(E), Fn);
      return;
    }
    case Stmt::Kind::Block:
    case Stmt::Kind::TiledLoop:
    case Stmt::Kind::Barrier:
      return;
    }
    latteUnreachable("unknown statement kind");
  });
}

ExprPtr ir::substituteVarInExpr(ExprPtr E, const std::string &Name,
                                const Expr &Replacement) {
  return rewriteExpr(std::move(E), [&](const Expr *Node) -> ExprPtr {
    if (const auto *V = dyn_cast<VarExpr>(Node))
      if (V->name() == Name)
        return Replacement.clone();
    return nullptr;
  });
}

void ir::substituteVar(Stmt *S, const std::string &Name,
                       const Expr &Replacement) {
  rewriteExprsInStmt(S, [&](const Expr *Node) -> ExprPtr {
    if (const auto *V = dyn_cast<VarExpr>(Node))
      if (V->name() == Name)
        return Replacement.clone();
    return nullptr;
  });
}

ExprPtr ir::foldConstants(ExprPtr E) {
  return rewriteExpr(std::move(E), [](const Expr *Node) -> ExprPtr {
    const auto *B = dyn_cast<BinaryExpr>(Node);
    if (!B)
      return nullptr;
    const auto *LC = dyn_cast<IntConstExpr>(B->lhs());
    const auto *RC = dyn_cast<IntConstExpr>(B->rhs());
    if (LC && RC) {
      int64_t L = LC->value(), R = RC->value();
      switch (B->op()) {
      case BinaryOpKind::Add:
        return intConst(L + R);
      case BinaryOpKind::Sub:
        return intConst(L - R);
      case BinaryOpKind::Mul:
        return intConst(L * R);
      case BinaryOpKind::Div:
        return R == 0 ? nullptr : intConst(L / R);
      case BinaryOpKind::Min:
        return intConst(std::min(L, R));
      case BinaryOpKind::Max:
        return intConst(std::max(L, R));
      }
    }
    // Algebraic identities on one constant side.
    auto IsConst = [](const Expr *X, int64_t V) {
      const auto *C = dyn_cast<IntConstExpr>(X);
      return C && C->value() == V;
    };
    switch (B->op()) {
    case BinaryOpKind::Add:
      if (IsConst(B->lhs(), 0))
        return B->rhs()->clone();
      if (IsConst(B->rhs(), 0))
        return B->lhs()->clone();
      break;
    case BinaryOpKind::Sub:
      if (IsConst(B->rhs(), 0))
        return B->lhs()->clone();
      break;
    case BinaryOpKind::Mul:
      if (IsConst(B->lhs(), 1))
        return B->rhs()->clone();
      if (IsConst(B->rhs(), 1))
        return B->lhs()->clone();
      if (IsConst(B->lhs(), 0) || IsConst(B->rhs(), 0))
        return intConst(0);
      break;
    default:
      break;
    }
    return nullptr;
  });
}

bool ir::evalConstInt(const Expr *E, int64_t &Out) {
  if (const auto *C = dyn_cast<IntConstExpr>(E)) {
    Out = C->value();
    return true;
  }
  if (const auto *B = dyn_cast<BinaryExpr>(E)) {
    int64_t L, R;
    if (!evalConstInt(B->lhs(), L) || !evalConstInt(B->rhs(), R))
      return false;
    switch (B->op()) {
    case BinaryOpKind::Add:
      Out = L + R;
      return true;
    case BinaryOpKind::Sub:
      Out = L - R;
      return true;
    case BinaryOpKind::Mul:
      Out = L * R;
      return true;
    case BinaryOpKind::Div:
      if (R == 0)
        return false;
      Out = L / R;
      return true;
    case BinaryOpKind::Min:
      Out = std::min(L, R);
      return true;
    case BinaryOpKind::Max:
      Out = std::max(L, R);
      return true;
    }
  }
  return false;
}

bool ir::exprEquals(const Expr *A, const Expr *B) {
  if (A == B)
    return true;
  if (!A || !B || A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case Expr::Kind::IntConst:
    return cast<IntConstExpr>(A)->value() == cast<IntConstExpr>(B)->value();
  case Expr::Kind::FloatConst:
    return cast<FloatConstExpr>(A)->value() ==
           cast<FloatConstExpr>(B)->value();
  case Expr::Kind::Var:
    return cast<VarExpr>(A)->name() == cast<VarExpr>(B)->name();
  case Expr::Kind::Load: {
    const auto *LA = cast<LoadExpr>(A);
    const auto *LB = cast<LoadExpr>(B);
    if (LA->buffer() != LB->buffer() ||
        LA->indices().size() != LB->indices().size())
      return false;
    for (size_t I = 0; I != LA->indices().size(); ++I)
      if (!exprEquals(LA->indices()[I].get(), LB->indices()[I].get()))
        return false;
    return true;
  }
  case Expr::Kind::Binary: {
    const auto *BA = cast<BinaryExpr>(A);
    const auto *BB = cast<BinaryExpr>(B);
    return BA->op() == BB->op() && exprEquals(BA->lhs(), BB->lhs()) &&
           exprEquals(BA->rhs(), BB->rhs());
  }
  case Expr::Kind::Unary: {
    const auto *UA = cast<UnaryExpr>(A);
    const auto *UB = cast<UnaryExpr>(B);
    return UA->op() == UB->op() && exprEquals(UA->operand(), UB->operand());
  }
  case Expr::Kind::Compare: {
    const auto *CA = cast<CompareExpr>(A);
    const auto *CB = cast<CompareExpr>(B);
    return CA->op() == CB->op() && exprEquals(CA->lhs(), CB->lhs()) &&
           exprEquals(CA->rhs(), CB->rhs());
  }
  case Expr::Kind::Select: {
    const auto *SA = cast<SelectExpr>(A);
    const auto *SB = cast<SelectExpr>(B);
    return exprEquals(SA->cond(), SB->cond()) &&
           exprEquals(SA->trueValue(), SB->trueValue()) &&
           exprEquals(SA->falseValue(), SB->falseValue());
  }
  }
  latteUnreachable("unknown expression kind");
}

namespace {

/// Variable-name bijection accumulated while comparing two trees.
class VarBijection {
public:
  bool match(const std::string &A, const std::string &B) {
    auto ItA = AtoB.find(A);
    auto ItB = BtoA.find(B);
    if (ItA == AtoB.end() && ItB == BtoA.end()) {
      AtoB[A] = B;
      BtoA[B] = A;
      return true;
    }
    return ItA != AtoB.end() && ItA->second == B && ItB != BtoA.end() &&
           ItB->second == A;
  }

private:
  std::unordered_map<std::string, std::string> AtoB, BtoA;
};

bool exprEquiv(const Expr *A, const Expr *B, VarBijection &Vars) {
  if (!A || !B)
    return A == B;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case Expr::Kind::IntConst:
    return cast<IntConstExpr>(A)->value() == cast<IntConstExpr>(B)->value();
  case Expr::Kind::FloatConst:
    return cast<FloatConstExpr>(A)->value() ==
           cast<FloatConstExpr>(B)->value();
  case Expr::Kind::Var:
    return Vars.match(cast<VarExpr>(A)->name(), cast<VarExpr>(B)->name());
  case Expr::Kind::Load: {
    const auto *LA = cast<LoadExpr>(A);
    const auto *LB = cast<LoadExpr>(B);
    if (LA->buffer() != LB->buffer() ||
        LA->indices().size() != LB->indices().size())
      return false;
    for (size_t I = 0; I != LA->indices().size(); ++I)
      if (!exprEquiv(LA->indices()[I].get(), LB->indices()[I].get(), Vars))
        return false;
    return true;
  }
  case Expr::Kind::Binary: {
    const auto *BA = cast<BinaryExpr>(A);
    const auto *BB = cast<BinaryExpr>(B);
    return BA->op() == BB->op() && exprEquiv(BA->lhs(), BB->lhs(), Vars) &&
           exprEquiv(BA->rhs(), BB->rhs(), Vars);
  }
  case Expr::Kind::Unary: {
    const auto *UA = cast<UnaryExpr>(A);
    const auto *UB = cast<UnaryExpr>(B);
    return UA->op() == UB->op() &&
           exprEquiv(UA->operand(), UB->operand(), Vars);
  }
  case Expr::Kind::Compare: {
    const auto *CA = cast<CompareExpr>(A);
    const auto *CB = cast<CompareExpr>(B);
    return CA->op() == CB->op() && exprEquiv(CA->lhs(), CB->lhs(), Vars) &&
           exprEquiv(CA->rhs(), CB->rhs(), Vars);
  }
  case Expr::Kind::Select: {
    const auto *SA = cast<SelectExpr>(A);
    const auto *SB = cast<SelectExpr>(B);
    return exprEquiv(SA->cond(), SB->cond(), Vars) &&
           exprEquiv(SA->trueValue(), SB->trueValue(), Vars) &&
           exprEquiv(SA->falseValue(), SB->falseValue(), Vars);
  }
  }
  return false;
}

bool stmtEquiv(const Stmt *A, const Stmt *B, VarBijection &Vars) {
  if (!A || !B)
    return A == B;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case Stmt::Kind::Block: {
    const auto *BA = cast<BlockStmt>(A);
    const auto *BB = cast<BlockStmt>(B);
    if (BA->stmts().size() != BB->stmts().size())
      return false;
    for (size_t I = 0; I != BA->stmts().size(); ++I)
      if (!stmtEquiv(BA->stmts()[I].get(), BB->stmts()[I].get(), Vars))
        return false;
    return true;
  }
  case Stmt::Kind::For: {
    const auto *FA = cast<ForStmt>(A);
    const auto *FB = cast<ForStmt>(B);
    return FA->extent() == FB->extent() &&
           Vars.match(FA->var(), FB->var()) &&
           exprEquiv(FA->lo(), FB->lo(), Vars) &&
           stmtEquiv(FA->body(), FB->body(), Vars);
  }
  case Stmt::Kind::TiledLoop: {
    const auto *TA = cast<TiledLoopStmt>(A);
    const auto *TB = cast<TiledLoopStmt>(B);
    return TA->numTiles() == TB->numTiles() &&
           TA->tileSize() == TB->tileSize() &&
           Vars.match(TA->tileVar(), TB->tileVar()) &&
           stmtEquiv(TA->body(), TB->body(), Vars);
  }
  case Stmt::Kind::If: {
    const auto *IA = cast<IfStmt>(A);
    const auto *IB = cast<IfStmt>(B);
    return exprEquiv(IA->cond(), IB->cond(), Vars) &&
           stmtEquiv(IA->thenStmt(), IB->thenStmt(), Vars) &&
           stmtEquiv(IA->elseStmt(), IB->elseStmt(), Vars);
  }
  case Stmt::Kind::Store: {
    const auto *SA = cast<StoreStmt>(A);
    const auto *SB = cast<StoreStmt>(B);
    if (SA->buffer() != SB->buffer() || SA->op() != SB->op() ||
        SA->indices().size() != SB->indices().size())
      return false;
    for (size_t I = 0; I != SA->indices().size(); ++I)
      if (!exprEquiv(SA->indices()[I].get(), SB->indices()[I].get(), Vars))
        return false;
    return exprEquiv(SA->value(), SB->value(), Vars);
  }
  case Stmt::Kind::Decl: {
    const auto *DA = cast<DeclStmt>(A);
    const auto *DB = cast<DeclStmt>(B);
    return Vars.match(DA->name(), DB->name()) &&
           exprEquiv(DA->init(), DB->init(), Vars);
  }
  case Stmt::Kind::AssignVar: {
    const auto *AA = cast<AssignVarStmt>(A);
    const auto *AB = cast<AssignVarStmt>(B);
    return AA->op() == AB->op() && Vars.match(AA->name(), AB->name()) &&
           exprEquiv(AA->value(), AB->value(), Vars);
  }
  case Stmt::Kind::KernelCall:
  case Stmt::Kind::Barrier:
    // Matching operates on pre-lowered neuron bodies; kernel calls and
    // barriers never appear there. Treat as non-equivalent conservatively.
    return false;
  }
  return false;
}

} // namespace

bool ir::stmtEquivalent(const Stmt *A, const Stmt *B) {
  VarBijection Vars;
  return stmtEquiv(A, B, Vars);
}
