//===- ir/expr.h - Latte IR expressions ------------------------*- C++ -*-===//
///
/// \file
/// Expression nodes of the Latte intermediate representation. The IR plays
/// the role of the paper's "superset of the internal Julia AST" (§5): neuron
/// forward/backward functions are written against it, synthesis produces
/// loop nests of it, and every optimization pass rewrites it.
///
/// Expressions are scalar-valued (float semantics; loop variables are
/// integers). Ownership is by std::unique_ptr; trees are cloneable.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_IR_EXPR_H
#define LATTE_IR_EXPR_H

#include "support/casting.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace latte {
namespace ir {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Base class of all IR expressions.
class Expr {
public:
  enum class Kind {
    IntConst,
    FloatConst,
    Var,
    Load,
    Binary,
    Unary,
    Compare,
    Select,
  };

  explicit Expr(Kind K) : TheKind(K) {}
  virtual ~Expr();

  Kind kind() const { return TheKind; }

  /// Deep copy of this expression tree.
  virtual ExprPtr clone() const = 0;

private:
  const Kind TheKind;
};

/// Integer literal (loop bounds, index arithmetic constants).
class IntConstExpr : public Expr {
public:
  explicit IntConstExpr(int64_t Value)
      : Expr(Kind::IntConst), Value(Value) {}

  int64_t value() const { return Value; }
  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::IntConst; }

private:
  int64_t Value;
};

/// Floating-point literal.
class FloatConstExpr : public Expr {
public:
  explicit FloatConstExpr(double Value)
      : Expr(Kind::FloatConst), Value(Value) {}

  double value() const { return Value; }
  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::FloatConst; }

private:
  double Value;
};

/// Reference to a loop variable or a local scalar variable.
class VarExpr : public Expr {
public:
  explicit VarExpr(std::string Name) : Expr(Kind::Var), Name(std::move(Name)) {
    assert(!this->Name.empty() && "variable name must not be empty");
  }

  const std::string &name() const { return Name; }
  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::Var; }

private:
  std::string Name;
};

/// Load of one element of a named buffer: Buffer[I0, I1, ...]. Index
/// expressions are integer-valued.
class LoadExpr : public Expr {
public:
  LoadExpr(std::string Buffer, std::vector<ExprPtr> Indices)
      : Expr(Kind::Load), Buffer(std::move(Buffer)),
        Indices(std::move(Indices)) {}

  const std::string &buffer() const { return Buffer; }
  const std::vector<ExprPtr> &indices() const { return Indices; }
  std::vector<ExprPtr> &indices() { return Indices; }
  void setBuffer(std::string NewBuffer) { Buffer = std::move(NewBuffer); }

  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::Load; }

private:
  std::string Buffer;
  std::vector<ExprPtr> Indices;
};

/// Binary arithmetic. Min/Max are included because they are fundamental to
/// pooling and rectifier neurons.
enum class BinaryOpKind { Add, Sub, Mul, Div, Min, Max };

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOpKind Op, ExprPtr LHS, ExprPtr RHS)
      : Expr(Kind::Binary), Op(Op), LHS(std::move(LHS)), RHS(std::move(RHS)) {
    assert(this->LHS && this->RHS && "binary operands must be non-null");
  }

  BinaryOpKind op() const { return Op; }
  const Expr *lhs() const { return LHS.get(); }
  const Expr *rhs() const { return RHS.get(); }
  Expr *lhs() { return LHS.get(); }
  Expr *rhs() { return RHS.get(); }
  ExprPtr takeLhs() { return std::move(LHS); }
  ExprPtr takeRhs() { return std::move(RHS); }

  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOpKind Op;
  ExprPtr LHS, RHS;
};

/// Unary operations, including the transcendental intrinsics neuron
/// activation functions need.
enum class UnaryOpKind { Neg, Exp, Log, Tanh, Sigmoid, Sqrt, Abs };

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOpKind Op, ExprPtr Operand)
      : Expr(Kind::Unary), Op(Op), Operand(std::move(Operand)) {
    assert(this->Operand && "unary operand must be non-null");
  }

  UnaryOpKind op() const { return Op; }
  const Expr *operand() const { return Operand.get(); }
  Expr *operand() { return Operand.get(); }

  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnaryOpKind Op;
  ExprPtr Operand;
};

/// Comparison producing 1.0 / 0.0 (used through SelectExpr).
enum class CompareOpKind { LT, LE, GT, GE, EQ, NE };

class CompareExpr : public Expr {
public:
  CompareExpr(CompareOpKind Op, ExprPtr LHS, ExprPtr RHS)
      : Expr(Kind::Compare), Op(Op), LHS(std::move(LHS)), RHS(std::move(RHS)) {
    assert(this->LHS && this->RHS && "compare operands must be non-null");
  }

  CompareOpKind op() const { return Op; }
  const Expr *lhs() const { return LHS.get(); }
  const Expr *rhs() const { return RHS.get(); }
  Expr *lhs() { return LHS.get(); }
  Expr *rhs() { return RHS.get(); }

  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::Compare; }

private:
  CompareOpKind Op;
  ExprPtr LHS, RHS;
};

/// Cond ? TrueValue : FalseValue.
class SelectExpr : public Expr {
public:
  SelectExpr(ExprPtr Cond, ExprPtr TrueValue, ExprPtr FalseValue)
      : Expr(Kind::Select), Cond(std::move(Cond)),
        TrueValue(std::move(TrueValue)), FalseValue(std::move(FalseValue)) {}

  const Expr *cond() const { return Cond.get(); }
  const Expr *trueValue() const { return TrueValue.get(); }
  const Expr *falseValue() const { return FalseValue.get(); }
  Expr *cond() { return Cond.get(); }
  Expr *trueValue() { return TrueValue.get(); }
  Expr *falseValue() { return FalseValue.get(); }

  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::Select; }

private:
  ExprPtr Cond, TrueValue, FalseValue;
};

} // namespace ir
} // namespace latte

#endif // LATTE_IR_EXPR_H
