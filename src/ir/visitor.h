//===- ir/visitor.h - IR traversal and rewriting ---------------*- C++ -*-===//
///
/// \file
/// Function-based traversal utilities over the IR. Passes typically use
/// walkStmts / walkExprs for analysis and rewriteExprs for local rewriting;
/// structural statement rewrites (tiling, fusion) manipulate BlockStmt
/// vectors directly.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_IR_VISITOR_H
#define LATTE_IR_VISITOR_H

#include "ir/expr.h"
#include "ir/stmt.h"

#include <functional>

namespace latte {
namespace ir {

/// Pre-order traversal of an expression tree.
void walkExprs(const Expr *E, const std::function<void(const Expr *)> &Fn);

/// Pre-order traversal of a statement tree (statements only).
void walkStmts(const Stmt *S, const std::function<void(const Stmt *)> &Fn);
void walkStmts(Stmt *S, const std::function<void(Stmt *)> &Fn);

/// Visits every expression reachable from \p S (loop bounds, indices, store
/// values, conditions, kernel-call offsets).
void walkExprsInStmt(const Stmt *S,
                     const std::function<void(const Expr *)> &Fn);

/// Bottom-up expression rewriting: \p Fn is offered each node after its
/// children were rewritten; returning a non-null ExprPtr replaces the node.
ExprPtr rewriteExpr(ExprPtr E,
                    const std::function<ExprPtr(const Expr *)> &Fn);

/// Applies rewriteExpr to every expression position in the statement tree.
void rewriteExprsInStmt(Stmt *S,
                        const std::function<ExprPtr(const Expr *)> &Fn);

/// Substitutes VarExpr(\p Name) with clones of \p Replacement throughout.
void substituteVar(Stmt *S, const std::string &Name, const Expr &Replacement);
ExprPtr substituteVarInExpr(ExprPtr E, const std::string &Name,
                            const Expr &Replacement);

/// Constant-folds integer arithmetic: Add/Sub/Mul/Div over IntConst
/// operands, and the identities x+0, x*1, x*0, 0/x.
ExprPtr foldConstants(ExprPtr E);

/// Attempts to evaluate \p E as an integer constant (after folding).
/// Returns true and sets \p Out on success.
bool evalConstInt(const Expr *E, int64_t &Out);

/// Structural equality of expression trees.
bool exprEquals(const Expr *A, const Expr *B);

/// Alpha-equivalence of statement trees: structural equality modulo a
/// consistent renaming of loop/local variables. This is the comparison the
/// pattern-matching pass uses to recognize canonical neuron bodies
/// regardless of the variable names the user chose.
bool stmtEquivalent(const Stmt *A, const Stmt *B);

} // namespace ir
} // namespace latte

#endif // LATTE_IR_VISITOR_H
