//===- ir/ast.cpp - Clone implementations and kernel names ----*- C++ -*-===//

#include "ir/expr.h"
#include "ir/stmt.h"

#include "support/error.h"

using namespace latte;
using namespace latte::ir;

Expr::~Expr() = default;
Stmt::~Stmt() = default;

namespace {

std::vector<ExprPtr> cloneAll(const std::vector<ExprPtr> &Exprs) {
  std::vector<ExprPtr> Result;
  Result.reserve(Exprs.size());
  for (const ExprPtr &E : Exprs)
    Result.push_back(E->clone());
  return Result;
}

} // namespace

ExprPtr IntConstExpr::clone() const {
  return std::make_unique<IntConstExpr>(Value);
}

ExprPtr FloatConstExpr::clone() const {
  return std::make_unique<FloatConstExpr>(Value);
}

ExprPtr VarExpr::clone() const { return std::make_unique<VarExpr>(Name); }

ExprPtr LoadExpr::clone() const {
  return std::make_unique<LoadExpr>(Buffer, cloneAll(Indices));
}

ExprPtr BinaryExpr::clone() const {
  return std::make_unique<BinaryExpr>(Op, LHS->clone(), RHS->clone());
}

ExprPtr UnaryExpr::clone() const {
  return std::make_unique<UnaryExpr>(Op, Operand->clone());
}

ExprPtr CompareExpr::clone() const {
  return std::make_unique<CompareExpr>(Op, LHS->clone(), RHS->clone());
}

ExprPtr SelectExpr::clone() const {
  return std::make_unique<SelectExpr>(Cond->clone(), TrueValue->clone(),
                                      FalseValue->clone());
}

StmtPtr BlockStmt::clone() const {
  std::vector<StmtPtr> NewStmts;
  NewStmts.reserve(Stmts.size());
  for (const StmtPtr &S : Stmts)
    NewStmts.push_back(S->clone());
  return std::make_unique<BlockStmt>(std::move(NewStmts), Label);
}

StmtPtr ForStmt::clone() const {
  auto New =
      std::make_unique<ForStmt>(Var, Lo->clone(), Extent, Body->clone());
  New->Annotations = Annotations;
  return New;
}

StmtPtr TiledLoopStmt::clone() const {
  auto New = std::make_unique<TiledLoopStmt>(
      TileVar, OrigVar, NumTiles, TileSize, DependenceDistance, Body->clone());
  New->Annotations = Annotations;
  return New;
}

StmtPtr IfStmt::clone() const {
  return std::make_unique<IfStmt>(Cond->clone(), Then->clone(),
                                  Else ? Else->clone() : nullptr);
}

StmtPtr StoreStmt::clone() const {
  return std::make_unique<StoreStmt>(Buffer, cloneAll(Indices), Op,
                                     Value->clone());
}

StmtPtr DeclStmt::clone() const {
  return std::make_unique<DeclStmt>(Name, Init->clone());
}

StmtPtr AssignVarStmt::clone() const {
  return std::make_unique<AssignVarStmt>(Name, Op, Value->clone());
}

StmtPtr KernelCallStmt::clone() const {
  std::vector<KernelBufArg> NewBufs;
  NewBufs.reserve(Bufs.size());
  for (const KernelBufArg &B : Bufs)
    NewBufs.push_back(B.clone());
  return std::make_unique<KernelCallStmt>(Kernel, std::move(NewBufs), IntArgs,
                                          FloatArgs, cloneAll(ExprArgs));
}

StmtPtr BarrierStmt::clone() const {
  return std::make_unique<BarrierStmt>(Reason);
}

const char *latte::ir::kernelKindName(KernelKind K) {
  switch (K) {
  case KernelKind::Zero:
    return "zero";
  case KernelKind::Copy:
    return "copy";
  case KernelKind::AddTo:
    return "add_to";
  case KernelKind::MulInto:
    return "mul_into";
  case KernelKind::MulAddTo:
    return "mul_add_to";
  case KernelKind::Scale:
    return "scale";
  case KernelKind::Sgemm:
    return "sgemm";
  case KernelKind::Gather2D:
    return "gather2d";
  case KernelKind::ScatterAdd2D:
    return "scatter_add2d";
  case KernelKind::ActFwdCols:
    return "act_fwd";
  case KernelKind::ActBwdCols:
    return "act_bwd";
  case KernelKind::BiasAddCols:
    return "bias_add_cols";
  case KernelKind::BiasAddPerRow:
    return "bias_add_per_row";
  case KernelKind::RowSumAdd:
    return "row_sum_add";
  case KernelKind::ColSumAdd:
    return "col_sum_add";
  case KernelKind::Im2ColRows:
    return "im2col";
  case KernelKind::Col2ImRows:
    return "col2im";
  case KernelKind::MaxPoolFwdRows:
    return "max_pool_fwd";
  case KernelKind::MaxPoolBwdRows:
    return "max_pool_bwd";
  case KernelKind::AvgPoolFwdRows:
    return "avg_pool_fwd";
  case KernelKind::AvgPoolBwdRows:
    return "avg_pool_bwd";
  case KernelKind::SoftmaxFwd:
    return "softmax_fwd";
  case KernelKind::SoftmaxLossFwd:
    return "softmax_loss_fwd";
  case KernelKind::SoftmaxLossBwd:
    return "softmax_loss_bwd";
  case KernelKind::SoftmaxBwd:
    return "softmax_bwd";
  case KernelKind::DropoutMask:
    return "dropout_mask";
  case KernelKind::GradSyncHook:
    return "grad_sync_hook";
  }
  latteUnreachable("unknown kernel kind");
}
