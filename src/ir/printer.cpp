//===- ir/printer.cpp -----------------------------------------*- C++ -*-===//

#include "ir/printer.h"

#include "support/error.h"
#include "support/string_utils.h"

#include <charconv>
#include <sstream>

using namespace latte;
using namespace latte::ir;

namespace {

/// Shortest decimal form that parses back to the exact same double
/// (std::to_chars), independent of stream precision state and locale, so
/// printed IR is stable across runs and round-trips through clone/reprint.
/// Integral values keep a trailing ".0" to stay visually distinct from ints.
std::string formatFloat(double V) {
  char Buf[64];
  auto [Ptr, Ec] = std::to_chars(Buf, Buf + sizeof(Buf), V);
  std::string Text(Buf, Ptr);
  if (Text.find('.') == std::string::npos &&
      Text.find('e') == std::string::npos &&
      Text.find("inf") == std::string::npos &&
      Text.find("nan") == std::string::npos)
    Text += ".0";
  return Text;
}

const char *binaryOpName(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::Add:
    return "+";
  case BinaryOpKind::Sub:
    return "-";
  case BinaryOpKind::Mul:
    return "*";
  case BinaryOpKind::Div:
    return "/";
  case BinaryOpKind::Min:
    return "min";
  case BinaryOpKind::Max:
    return "max";
  }
  latteUnreachable("unknown binary op");
}

const char *unaryOpName(UnaryOpKind Op) {
  switch (Op) {
  case UnaryOpKind::Neg:
    return "-";
  case UnaryOpKind::Exp:
    return "exp";
  case UnaryOpKind::Log:
    return "log";
  case UnaryOpKind::Tanh:
    return "tanh";
  case UnaryOpKind::Sigmoid:
    return "sigmoid";
  case UnaryOpKind::Sqrt:
    return "sqrt";
  case UnaryOpKind::Abs:
    return "abs";
  }
  latteUnreachable("unknown unary op");
}

const char *compareOpName(CompareOpKind Op) {
  switch (Op) {
  case CompareOpKind::LT:
    return "<";
  case CompareOpKind::LE:
    return "<=";
  case CompareOpKind::GT:
    return ">";
  case CompareOpKind::GE:
    return ">=";
  case CompareOpKind::EQ:
    return "==";
  case CompareOpKind::NE:
    return "!=";
  }
  latteUnreachable("unknown compare op");
}

const char *accumOpName(AccumKind Op) {
  switch (Op) {
  case AccumKind::Assign:
    return "=";
  case AccumKind::AddAssign:
    return "+=";
  case AccumKind::MulAssign:
    return "*=";
  case AccumKind::MaxAssign:
    return "max=";
  case AccumKind::MinAssign:
    return "min=";
  }
  latteUnreachable("unknown accum kind");
}

std::string printIndexList(const std::vector<ExprPtr> &Indices) {
  std::vector<std::string> Parts;
  Parts.reserve(Indices.size());
  for (const ExprPtr &I : Indices)
    Parts.push_back(printExpr(I.get()));
  return join(Parts, ", ");
}

void printStmtImpl(const Stmt *S, int Indent, std::ostringstream &OS);

void indentTo(std::ostringstream &OS, int Indent) {
  for (int I = 0; I < Indent; ++I)
    OS << "  ";
}

} // namespace

std::string ir::printExpr(const Expr *E) {
  if (!E)
    return "<null>";
  switch (E->kind()) {
  case Expr::Kind::IntConst:
    return std::to_string(cast<IntConstExpr>(E)->value());
  case Expr::Kind::FloatConst:
    return formatFloat(cast<FloatConstExpr>(E)->value());
  case Expr::Kind::Var:
    return cast<VarExpr>(E)->name();
  case Expr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    return L->buffer() + "[" + printIndexList(L->indices()) + "]";
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->op() == BinaryOpKind::Min || B->op() == BinaryOpKind::Max)
      return std::string(binaryOpName(B->op())) + "(" + printExpr(B->lhs()) +
             ", " + printExpr(B->rhs()) + ")";
    return "(" + printExpr(B->lhs()) + " " + binaryOpName(B->op()) + " " +
           printExpr(B->rhs()) + ")";
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->op() == UnaryOpKind::Neg)
      return "(-" + printExpr(U->operand()) + ")";
    return std::string(unaryOpName(U->op())) + "(" + printExpr(U->operand()) +
           ")";
  }
  case Expr::Kind::Compare: {
    const auto *C = cast<CompareExpr>(E);
    return "(" + printExpr(C->lhs()) + " " + compareOpName(C->op()) + " " +
           printExpr(C->rhs()) + ")";
  }
  case Expr::Kind::Select: {
    const auto *Sel = cast<SelectExpr>(E);
    return "select(" + printExpr(Sel->cond()) + ", " +
           printExpr(Sel->trueValue()) + ", " + printExpr(Sel->falseValue()) +
           ")";
  }
  }
  latteUnreachable("unknown expression kind");
}

namespace {

void printStmtImpl(const Stmt *S, int Indent, std::ostringstream &OS) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Block: {
    const auto *B = cast<BlockStmt>(S);
    if (!B->label().empty()) {
      indentTo(OS, Indent);
      OS << "# " << B->label() << "\n";
    }
    for (const StmtPtr &Child : B->stmts())
      printStmtImpl(Child.get(), Indent, OS);
    return;
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    indentTo(OS, Indent);
    OS << "for " << F->var() << " in " << printExpr(F->lo()) << ":+"
       << F->extent();
    if (F->annotations().Parallel) {
      OS << " parallel";
      if (F->annotations().Collapse > 1)
        OS << " collapse(" << F->annotations().Collapse << ")";
    }
    OS << "\n";
    printStmtImpl(F->body(), Indent + 1, OS);
    return;
  }
  case Stmt::Kind::TiledLoop: {
    const auto *T = cast<TiledLoopStmt>(S);
    indentTo(OS, Indent);
    OS << "tiled " << T->tileVar() << " in 0:" << T->numTiles() << " (var "
       << T->origVar() << ", tile " << T->tileSize() << ", dist "
       << T->dependenceDistance() << ")";
    if (T->annotations().Parallel)
      OS << " parallel";
    OS << "\n";
    printStmtImpl(T->body(), Indent + 1, OS);
    return;
  }
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    indentTo(OS, Indent);
    OS << "if " << printExpr(If->cond()) << "\n";
    printStmtImpl(If->thenStmt(), Indent + 1, OS);
    if (If->elseStmt()) {
      indentTo(OS, Indent);
      OS << "else\n";
      printStmtImpl(If->elseStmt(), Indent + 1, OS);
    }
    return;
  }
  case Stmt::Kind::Store: {
    const auto *St = cast<StoreStmt>(S);
    indentTo(OS, Indent);
    OS << St->buffer() << "[" << printIndexList(St->indices()) << "] "
       << accumOpName(St->op()) << " " << printExpr(St->value()) << "\n";
    return;
  }
  case Stmt::Kind::Decl: {
    const auto *D = cast<DeclStmt>(S);
    indentTo(OS, Indent);
    OS << "let " << D->name() << " = " << printExpr(D->init()) << "\n";
    return;
  }
  case Stmt::Kind::AssignVar: {
    const auto *A = cast<AssignVarStmt>(S);
    indentTo(OS, Indent);
    OS << A->name() << " " << accumOpName(A->op()) << " "
       << printExpr(A->value()) << "\n";
    return;
  }
  case Stmt::Kind::KernelCall: {
    const auto *K = cast<KernelCallStmt>(S);
    indentTo(OS, Indent);
    OS << kernelKindName(K->kernel()) << "(";
    std::vector<std::string> Parts;
    for (const KernelBufArg &B : K->bufs()) {
      std::string Arg = B.Buffer;
      if (B.Offset)
        Arg += "+" + printExpr(B.Offset.get());
      Parts.push_back(std::move(Arg));
    }
    for (int64_t V : K->intArgs())
      Parts.push_back(std::to_string(V));
    for (const ExprPtr &E : K->exprArgs())
      Parts.push_back(printExpr(E.get()));
    for (double V : K->floatArgs())
      Parts.push_back(formatFloat(V));
    OS << join(Parts, ", ") << ")\n";
    return;
  }
  case Stmt::Kind::Barrier: {
    const auto *B = cast<BarrierStmt>(S);
    indentTo(OS, Indent);
    OS << "barrier";
    if (!B->reason().empty())
      OS << " # " << B->reason();
    OS << "\n";
    return;
  }
  }
  latteUnreachable("unknown statement kind");
}

} // namespace

std::string ir::printStmt(const Stmt *S) {
  std::ostringstream OS;
  printStmtImpl(S, 0, OS);
  return OS.str();
}
