//===- ir/builder.h - Convenience constructors for the IR -----*- C++ -*-===//
///
/// \file
/// Free functions for building IR trees tersely. Neuron forward/backward
/// definitions (paper §4) and the synthesis phase both use these.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_IR_BUILDER_H
#define LATTE_IR_BUILDER_H

#include "ir/expr.h"
#include "ir/stmt.h"

namespace latte {
namespace ir {

inline ExprPtr intConst(int64_t V) {
  return std::make_unique<IntConstExpr>(V);
}

inline ExprPtr floatConst(double V) {
  return std::make_unique<FloatConstExpr>(V);
}

inline ExprPtr var(std::string Name) {
  return std::make_unique<VarExpr>(std::move(Name));
}

inline ExprPtr load(std::string Buffer, std::vector<ExprPtr> Indices) {
  return std::make_unique<LoadExpr>(std::move(Buffer), std::move(Indices));
}

inline ExprPtr binary(BinaryOpKind Op, ExprPtr L, ExprPtr R) {
  return std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R));
}

inline ExprPtr add(ExprPtr L, ExprPtr R) {
  return binary(BinaryOpKind::Add, std::move(L), std::move(R));
}
inline ExprPtr sub(ExprPtr L, ExprPtr R) {
  return binary(BinaryOpKind::Sub, std::move(L), std::move(R));
}
inline ExprPtr mul(ExprPtr L, ExprPtr R) {
  return binary(BinaryOpKind::Mul, std::move(L), std::move(R));
}
inline ExprPtr div(ExprPtr L, ExprPtr R) {
  return binary(BinaryOpKind::Div, std::move(L), std::move(R));
}
inline ExprPtr max(ExprPtr L, ExprPtr R) {
  return binary(BinaryOpKind::Max, std::move(L), std::move(R));
}
inline ExprPtr min(ExprPtr L, ExprPtr R) {
  return binary(BinaryOpKind::Min, std::move(L), std::move(R));
}

inline ExprPtr unary(UnaryOpKind Op, ExprPtr E) {
  return std::make_unique<UnaryExpr>(Op, std::move(E));
}

inline ExprPtr neg(ExprPtr E) { return unary(UnaryOpKind::Neg, std::move(E)); }
inline ExprPtr exp(ExprPtr E) { return unary(UnaryOpKind::Exp, std::move(E)); }
inline ExprPtr tanh(ExprPtr E) {
  return unary(UnaryOpKind::Tanh, std::move(E));
}
inline ExprPtr sigmoid(ExprPtr E) {
  return unary(UnaryOpKind::Sigmoid, std::move(E));
}

inline ExprPtr compare(CompareOpKind Op, ExprPtr L, ExprPtr R) {
  return std::make_unique<CompareExpr>(Op, std::move(L), std::move(R));
}

inline ExprPtr select(ExprPtr Cond, ExprPtr T, ExprPtr F) {
  return std::make_unique<SelectExpr>(std::move(Cond), std::move(T),
                                      std::move(F));
}

inline StmtPtr block(std::vector<StmtPtr> Stmts = {}, std::string Label = "") {
  return std::make_unique<BlockStmt>(std::move(Stmts), std::move(Label));
}

inline StmtPtr forLoop(std::string Var, int64_t Extent, StmtPtr Body) {
  return std::make_unique<ForStmt>(std::move(Var), intConst(0), Extent,
                                   std::move(Body));
}

inline StmtPtr forLoopFrom(std::string Var, ExprPtr Lo, int64_t Extent,
                           StmtPtr Body) {
  return std::make_unique<ForStmt>(std::move(Var), std::move(Lo), Extent,
                                   std::move(Body));
}

inline StmtPtr ifStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else = nullptr) {
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else));
}

inline StmtPtr store(std::string Buffer, std::vector<ExprPtr> Indices,
                     AccumKind Op, ExprPtr Value) {
  return std::make_unique<StoreStmt>(std::move(Buffer), std::move(Indices), Op,
                                     std::move(Value));
}

inline StmtPtr storeAssign(std::string Buffer, std::vector<ExprPtr> Indices,
                           ExprPtr Value) {
  return store(std::move(Buffer), std::move(Indices), AccumKind::Assign,
               std::move(Value));
}

inline StmtPtr storeAdd(std::string Buffer, std::vector<ExprPtr> Indices,
                        ExprPtr Value) {
  return store(std::move(Buffer), std::move(Indices), AccumKind::AddAssign,
               std::move(Value));
}

inline StmtPtr decl(std::string Name, ExprPtr Init) {
  return std::make_unique<DeclStmt>(std::move(Name), std::move(Init));
}

inline StmtPtr assignVar(std::string Name, AccumKind Op, ExprPtr Value) {
  return std::make_unique<AssignVarStmt>(std::move(Name), Op,
                                         std::move(Value));
}

/// Builds a vector of move-only KernelBufArg values (braced initializer
/// lists would require copies).
template <typename... Args> std::vector<KernelBufArg> bufArgs(Args &&...A) {
  std::vector<KernelBufArg> V;
  V.reserve(sizeof...(A));
  (V.push_back(std::move(A)), ...);
  return V;
}

/// Likewise for vectors of expressions (index lists).
template <typename... Args> std::vector<ExprPtr> indexList(Args &&...A) {
  std::vector<ExprPtr> V;
  V.reserve(sizeof...(A));
  (V.push_back(std::move(A)), ...);
  return V;
}

inline StmtPtr kernelCall(KernelKind Kernel, std::vector<KernelBufArg> Bufs,
                          std::vector<int64_t> IntArgs,
                          std::vector<double> FloatArgs = {},
                          std::vector<ExprPtr> ExprArgs = {}) {
  return std::make_unique<KernelCallStmt>(
      Kernel, std::move(Bufs), std::move(IntArgs), std::move(FloatArgs),
      std::move(ExprArgs));
}

inline StmtPtr barrier(std::string Reason = "") {
  return std::make_unique<BarrierStmt>(std::move(Reason));
}

} // namespace ir
} // namespace latte

#endif // LATTE_IR_BUILDER_H
