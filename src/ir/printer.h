//===- ir/printer.h - Human-readable IR dumps ------------------*- C++ -*-===//
///
/// \file
/// Renders IR trees in a pseudo-code style close to the paper's listings
/// (Figures 8-12). Tests assert against this representation, and the dumps
/// are the primary debugging aid for compiler passes.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_IR_PRINTER_H
#define LATTE_IR_PRINTER_H

#include "ir/expr.h"
#include "ir/stmt.h"

#include <string>

namespace latte {
namespace ir {

/// Renders an expression, e.g. "value[n, c] + weights[i, c] * inputs[i]".
std::string printExpr(const Expr *E);

/// Renders a statement tree with two-space indentation.
std::string printStmt(const Stmt *S);

} // namespace ir
} // namespace latte

#endif // LATTE_IR_PRINTER_H
