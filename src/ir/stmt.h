//===- ir/stmt.h - Latte IR statements -------------------------*- C++ -*-===//
///
/// \file
/// Statement nodes of the Latte IR: loop nests, stores, conditionals, plus
/// the domain-specific nodes the paper introduces during compilation —
/// tiled loops carrying dependence-distance metadata (§5.4.1), fusion
/// barriers for unfuseable ensembles (§5.5), and library-kernel calls
/// produced by pattern matching (§5.4.1).
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_IR_STMT_H
#define LATTE_IR_STMT_H

#include "ir/expr.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace latte {
namespace ir {

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Base class of all IR statements.
class Stmt {
public:
  enum class Kind {
    Block,
    For,
    TiledLoop,
    If,
    Store,
    Decl,
    AssignVar,
    KernelCall,
    Barrier,
  };

  explicit Stmt(Kind K) : TheKind(K) {}
  virtual ~Stmt();

  Kind kind() const { return TheKind; }

  /// Deep copy of this statement tree.
  virtual StmtPtr clone() const = 0;

private:
  const Kind TheKind;
};

/// Sequence of statements. The optional label records provenance (e.g.
/// "forward conv1") and shows up in the printer; it has no semantics.
class BlockStmt : public Stmt {
public:
  explicit BlockStmt(std::vector<StmtPtr> Stmts = {}, std::string Label = "")
      : Stmt(Kind::Block), Stmts(std::move(Stmts)), Label(std::move(Label)) {}

  const std::vector<StmtPtr> &stmts() const { return Stmts; }
  std::vector<StmtPtr> &stmts() { return Stmts; }
  void append(StmtPtr S) {
    assert(S && "cannot append a null statement");
    Stmts.push_back(std::move(S));
  }

  const std::string &label() const { return Label; }
  void setLabel(std::string NewLabel) { Label = std::move(NewLabel); }

  StmtPtr clone() const override;

  static bool classof(const Stmt *S) { return S->kind() == Kind::Block; }

private:
  std::vector<StmtPtr> Stmts;
  std::string Label;
};

/// Parallelization metadata attached to a for-loop by the parallelization
/// pass (§5.4.3). `Collapse` counts how many perfectly nested loops are
/// collapsed into one parallel iteration space (paper: batch × tile,
/// `collapse(2) schedule(static, 1)`).
struct LoopAnnotations {
  bool Parallel = false;
  int Collapse = 1;
  /// When > 0, the slice-rotation pass rewrote batch-indexed accesses in
  /// this loop's body to address a modular pool of SliceModulus item
  /// slices (buffer index `n % SliceModulus` instead of `n`). Iterations
  /// that share a slice must not run concurrently: the executor schedules
  /// the parallel loop over slices (serial stride-SliceModulus inner
  /// walk), and the JIT declines the loop so the interpreter path applies.
  int64_t SliceModulus = 0;
};

/// Counted loop: for Var in [Lo, Lo + Extent). The trip count is a static
/// constant (network shapes are known at compile time); the lower bound may
/// reference enclosing loop variables (e.g. `yTile * TILE_SIZE`).
class ForStmt : public Stmt {
public:
  ForStmt(std::string Var, ExprPtr Lo, int64_t Extent, StmtPtr Body)
      : Stmt(Kind::For), Var(std::move(Var)), Lo(std::move(Lo)),
        Extent(Extent), Body(std::move(Body)) {
    assert(this->Lo && this->Body && "for-loop parts must be non-null");
    assert(Extent >= 0 && "loop extent must be non-negative");
  }

  const std::string &var() const { return Var; }
  const Expr *lo() const { return Lo.get(); }
  Expr *lo() { return Lo.get(); }
  void setLo(ExprPtr NewLo) { Lo = std::move(NewLo); }
  int64_t extent() const { return Extent; }
  void setExtent(int64_t NewExtent) { Extent = NewExtent; }
  const Stmt *body() const { return Body.get(); }
  Stmt *body() { return Body.get(); }
  StmtPtr takeBody() { return std::move(Body); }
  void setBody(StmtPtr NewBody) { Body = std::move(NewBody); }

  const LoopAnnotations &annotations() const { return Annotations; }
  LoopAnnotations &annotations() { return Annotations; }

  StmtPtr clone() const override;

  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }

private:
  std::string Var;
  ExprPtr Lo;
  int64_t Extent;
  StmtPtr Body;
  LoopAnnotations Annotations;
};

/// The tiled-loop node the tiling pass introduces (§5.4.1): iterates TileVar
/// over [0, NumTiles); the body covers TileSize iterations of the original
/// loop variable starting at `TileVar * TileSize`. DependenceDistance is the
/// input dependence distance along the tiled dimension (0 = pointwise;
/// e.g. 2 for a 2×2 pooling layer reading a 2-tall input window), consumed
/// by the fusion pass to scale producer tiles.
class TiledLoopStmt : public Stmt {
public:
  TiledLoopStmt(std::string TileVar, std::string OrigVar, int64_t NumTiles,
                int64_t TileSize, int64_t DependenceDistance, StmtPtr Body)
      : Stmt(Kind::TiledLoop), TileVar(std::move(TileVar)),
        OrigVar(std::move(OrigVar)), NumTiles(NumTiles), TileSize(TileSize),
        DependenceDistance(DependenceDistance), Body(std::move(Body)) {
    assert(NumTiles > 0 && TileSize > 0 && "tile structure must be positive");
  }

  const std::string &tileVar() const { return TileVar; }
  const std::string &origVar() const { return OrigVar; }
  int64_t numTiles() const { return NumTiles; }
  int64_t tileSize() const { return TileSize; }
  int64_t dependenceDistance() const { return DependenceDistance; }
  const Stmt *body() const { return Body.get(); }
  Stmt *body() { return Body.get(); }
  StmtPtr takeBody() { return std::move(Body); }
  void setBody(StmtPtr NewBody) { Body = std::move(NewBody); }
  void rescale(int64_t NewNumTiles, int64_t NewTileSize) {
    assert(NewNumTiles * NewTileSize == NumTiles * TileSize &&
           "rescale must preserve the iteration space");
    NumTiles = NewNumTiles;
    TileSize = NewTileSize;
  }

  const LoopAnnotations &annotations() const { return Annotations; }
  LoopAnnotations &annotations() { return Annotations; }

  StmtPtr clone() const override;

  static bool classof(const Stmt *S) { return S->kind() == Kind::TiledLoop; }

private:
  std::string TileVar;
  std::string OrigVar;
  int64_t NumTiles;
  int64_t TileSize;
  int64_t DependenceDistance;
  StmtPtr Body;
  LoopAnnotations Annotations;
};

/// Conditional; Else may be null.
class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else = nullptr)
      : Stmt(Kind::If), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {
    assert(this->Cond && this->Then && "if requires condition and then");
  }

  const Expr *cond() const { return Cond.get(); }
  ExprPtr takeCond() { return std::move(Cond); }
  void setCond(ExprPtr NewCond) { Cond = std::move(NewCond); }
  const Stmt *thenStmt() const { return Then.get(); }
  const Stmt *elseStmt() const { return Else.get(); }
  Stmt *thenStmt() { return Then.get(); }
  Stmt *elseStmt() { return Else.get(); }

  StmtPtr clone() const override;

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  ExprPtr Cond;
  StmtPtr Then, Else;
};

/// Update operators for stores and scalar assignments. MaxAssign/MinAssign
/// exist because pooling reductions are first-class in this domain.
enum class AccumKind { Assign, AddAssign, MulAssign, MaxAssign, MinAssign };

/// Buffer element update: Buffer[Indices] <op>= Value.
class StoreStmt : public Stmt {
public:
  StoreStmt(std::string Buffer, std::vector<ExprPtr> Indices, AccumKind Op,
            ExprPtr Value)
      : Stmt(Kind::Store), Buffer(std::move(Buffer)),
        Indices(std::move(Indices)), Op(Op), Value(std::move(Value)) {
    assert(this->Value && "store value must be non-null");
  }

  const std::string &buffer() const { return Buffer; }
  void setBuffer(std::string NewBuffer) { Buffer = std::move(NewBuffer); }
  const std::vector<ExprPtr> &indices() const { return Indices; }
  std::vector<ExprPtr> &indices() { return Indices; }
  AccumKind op() const { return Op; }
  const Expr *value() const { return Value.get(); }
  Expr *value() { return Value.get(); }
  ExprPtr takeValue() { return std::move(Value); }
  void setValue(ExprPtr NewValue) { Value = std::move(NewValue); }

  StmtPtr clone() const override;

  static bool classof(const Stmt *S) { return S->kind() == Kind::Store; }

private:
  std::string Buffer;
  std::vector<ExprPtr> Indices;
  AccumKind Op;
  ExprPtr Value;
};

/// Declaration of a local float scalar (e.g. `maxval = -Inf`, Figure 9).
class DeclStmt : public Stmt {
public:
  DeclStmt(std::string Name, ExprPtr Init)
      : Stmt(Kind::Decl), Name(std::move(Name)), Init(std::move(Init)) {
    assert(this->Init && "declaration initializer must be non-null");
  }

  const std::string &name() const { return Name; }
  const Expr *init() const { return Init.get(); }
  Expr *init() { return Init.get(); }
  ExprPtr takeInit() { return std::move(Init); }
  void setInit(ExprPtr NewInit) { Init = std::move(NewInit); }

  StmtPtr clone() const override;

  static bool classof(const Stmt *S) { return S->kind() == Kind::Decl; }

private:
  std::string Name;
  ExprPtr Init;
};

/// Update of a local scalar: Name <op>= Value.
class AssignVarStmt : public Stmt {
public:
  AssignVarStmt(std::string Name, AccumKind Op, ExprPtr Value)
      : Stmt(Kind::AssignVar), Name(std::move(Name)), Op(Op),
        Value(std::move(Value)) {
    assert(this->Value && "assignment value must be non-null");
  }

  const std::string &name() const { return Name; }
  AccumKind op() const { return Op; }
  const Expr *value() const { return Value.get(); }
  Expr *value() { return Value.get(); }
  ExprPtr takeValue() { return std::move(Value); }
  void setValue(ExprPtr NewValue) { Value = std::move(NewValue); }

  StmtPtr clone() const override;

  static bool classof(const Stmt *S) { return S->kind() == Kind::AssignVar; }

private:
  std::string Name;
  AccumKind Op;
  ExprPtr Value;
};

/// Identifies the library kernel a KernelCallStmt invokes. Sgemm is the
/// kernel the paper pattern-matches to MKL (§5.4.1); the others are the
/// vectorized data-movement, elementwise, pooling, and normalization
/// kernels the Latte code generator emits for copy tasks and matched
/// neuron bodies. "Cols" kernels operate on a column range of a row-major
/// Rows x Cols matrix so the tiling pass can split them per tile
/// (Figures 10/12).
enum class KernelKind {
  Zero,           // bufs: {Dst};        ints: {Count}
  Copy,           // bufs: {Dst, Src};   ints: {Count}
  AddTo,          // bufs: {Dst, Src};   ints: {Count}   Dst += Src
  MulInto,        // bufs: {Dst, A, B};  ints: {Count}   Dst = A * B
  MulAddTo,       // bufs: {Dst, A, B};  ints: {Count}   Dst += A * B
  Scale,          // bufs: {Dst};        ints: {Count};  floats: {Factor}
  Sgemm,          // bufs: {A, B, C};    ints: {M, N, K, LdA, LdB, LdC,
                  //                            TransA, TransB, Accumulate}
  Gather2D,       // bufs: {Dst, Src, Table}; ints: {Rows, Cols, ColBegin,
                  //                                 ColCount}
                  //   Dst[r,c] = Table[r,c] >= 0 ? Src[Table[r,c]] : 0
  ScatterAdd2D,   // bufs: {Dst, Src, Table}; ints: {Rows, Cols, ColBegin,
                  //                                 ColCount}
                  //   if Table[r,c] >= 0: Dst[Table[r,c]] += Src[r,c]
  ActFwdCols,     // bufs: {Dst, Src};   ints: {Op, Rows, Cols, ColBegin,
                  //                            ColCount}
  ActBwdCols,     // bufs: {DstGrad, OutGrad, Value}; ints: {Op, Rows, Cols,
                  //                            ColBegin, ColCount}
  BiasAddCols,    // bufs: {Dst, Bias};  ints: {Rows, Cols, ColBegin,
                  //                            ColCount}  Dst[r,c] += Bias[r]
  BiasAddPerRow,  // bufs: {Dst, Bias};  ints: {Rows, Cols}
                  //                            Dst[r,c] += Bias[c]
  RowSumAdd,      // bufs: {Dst, Src};   ints: {Rows, Cols}  Dst[r] += sum_c
  ColSumAdd,      // bufs: {Dst, Src};   ints: {Rows, Cols}  Dst[c] += sum_r
  Im2ColRows,     // bufs: {Col, Image}; ints: {C, InH, InW, K, S, Pad,
                  //                             RowCount}; exprs: {RowBegin}
                  //   structured conv data-copy (affine windows)
  Col2ImRows,     // bufs: {Image, Col}; ints/exprs as Im2ColRows
                  //   adjoint: accumulate columns back into the image
  MaxPoolFwdRows, // bufs: {Out, In, Mask}; ints: {C, InH, InW, K, S, Pad,
                  //                               RowBegin, RowCount}
  MaxPoolBwdRows, // bufs: {InGrad, OutGrad, Mask}; ints: same as fwd
  AvgPoolFwdRows, // bufs: {Out, In};    ints: {C, InH, InW, K, S, Pad,
                  //                            RowBegin, RowCount}
  AvgPoolBwdRows, // bufs: {InGrad, OutGrad}; ints: same as fwd
  SoftmaxFwd,     // bufs: {Prob, Src};  ints: {Rows, Classes}
  SoftmaxLossFwd, // bufs: {Prob, Src, Labels, Loss}; ints: {Rows, Classes}
  SoftmaxLossBwd, // bufs: {SrcGrad, Prob, Labels}; ints: {Rows, Classes};
                  //                            floats: {Scale}
  SoftmaxBwd,     // bufs: {SrcGrad, OutGrad, Prob}; ints: {Rows, Classes}
                  //   SrcGrad[c] += Prob[c]*(OutGrad[c] - sum(OutGrad*Prob))
  DropoutMask,    // bufs: {Mask};       ints: {Count}; floats: {KeepProb}
  GradSyncHook,   // bufs: {GradBuffer}; ints: {Count}
                  //   runtime hook: initiate async reduction of the gradient
};

/// Activation op codes for ActFwdCols / ActBwdCols (IntArgs[0]).
enum class ActOpKind : int64_t { Relu = 0, Sigmoid = 1, Tanh = 2 };

/// One buffer argument of a kernel call: a named buffer plus an element
/// offset expression (which may reference enclosing loop variables — this is
/// how a GEMM call addresses the current batch item / tile, Figure 12).
struct KernelBufArg {
  std::string Buffer;
  ExprPtr Offset; ///< element offset; null means 0

  KernelBufArg(std::string Buffer, ExprPtr Offset = nullptr)
      : Buffer(std::move(Buffer)), Offset(std::move(Offset)) {}

  KernelBufArg clone() const {
    return KernelBufArg(Buffer, Offset ? Offset->clone() : nullptr);
  }
};

/// Call to a library kernel, produced by the pattern-matching and
/// vectorization passes. Integer arguments are static (shapes are known);
/// their meaning per kernel is documented on KernelKind.
class KernelCallStmt : public Stmt {
public:
  KernelCallStmt(KernelKind Kernel, std::vector<KernelBufArg> Bufs,
                 std::vector<int64_t> IntArgs,
                 std::vector<double> FloatArgs = {},
                 std::vector<ExprPtr> ExprArgs = {})
      : Stmt(Kind::KernelCall), Kernel(Kernel), Bufs(std::move(Bufs)),
        IntArgs(std::move(IntArgs)), FloatArgs(std::move(FloatArgs)),
        ExprArgs(std::move(ExprArgs)) {}

  KernelKind kernel() const { return Kernel; }
  const std::vector<KernelBufArg> &bufs() const { return Bufs; }
  std::vector<KernelBufArg> &bufs() { return Bufs; }
  const std::vector<int64_t> &intArgs() const { return IntArgs; }
  std::vector<int64_t> &intArgs() { return IntArgs; }
  const std::vector<double> &floatArgs() const { return FloatArgs; }
  /// Runtime-evaluated integer arguments (tile-dependent row/column
  /// offsets); meaning per kernel documented on KernelKind.
  const std::vector<ExprPtr> &exprArgs() const { return ExprArgs; }
  std::vector<ExprPtr> &exprArgs() { return ExprArgs; }

  StmtPtr clone() const override;

  static bool classof(const Stmt *S) { return S->kind() == Kind::KernelCall; }

private:
  KernelKind Kernel;
  std::vector<KernelBufArg> Bufs;
  std::vector<int64_t> IntArgs;
  std::vector<double> FloatArgs;
  std::vector<ExprPtr> ExprArgs;
};

/// Fusion-preventing marker (§5.5): the fusion pass never merges tiled loops
/// across a barrier. Synthesis places one around NormalizationEnsembles and
/// recurrent boundaries. Lowering removes it.
class BarrierStmt : public Stmt {
public:
  explicit BarrierStmt(std::string Reason = "")
      : Stmt(Kind::Barrier), Reason(std::move(Reason)) {}

  const std::string &reason() const { return Reason; }

  StmtPtr clone() const override;

  static bool classof(const Stmt *S) { return S->kind() == Kind::Barrier; }

private:
  std::string Reason;
};

/// Returns the printable name of a kernel (used by the printer and tests).
const char *kernelKindName(KernelKind K);

} // namespace ir
} // namespace latte

#endif // LATTE_IR_STMT_H
