//===- data/datasets.cpp --------------------------------------*- C++ -*-===//

#include "data/datasets.h"

#include "support/error.h"
#include "support/ltd_format.h"

#include <cmath>

using namespace latte;
using namespace latte::data;

Dataset::~Dataset() = default;

//===----------------------------------------------------------------------===//
// SyntheticMnist
//===----------------------------------------------------------------------===//

SyntheticMnist::SyntheticMnist(int64_t NumItems, uint64_t Seed,
                               int64_t NumClasses, int64_t Side,
                               float NoiseStddev, int64_t MaxShift)
    : NumItems(NumItems), Seed(Seed), NumClasses(NumClasses), Side(Side),
      NoiseStddev(NoiseStddev), MaxShift(MaxShift), Dims({1, Side, Side}) {
  assert(NumItems > 0 && NumClasses > 1 && Side > 4 * MaxShift &&
         "degenerate synthetic MNIST configuration");
  // Each class prototype is a sum of random Gaussian bumps on a canvas
  // large enough for shifted crops.
  const int64_t Canvas = Side + 2 * MaxShift;
  Rng R(Seed);
  Prototypes.reserve(NumClasses);
  for (int64_t C = 0; C < NumClasses; ++C) {
    Tensor Proto(Shape{Canvas, Canvas});
    const int Bumps = 6;
    for (int B = 0; B < Bumps; ++B) {
      double Cx = R.uniform(0.2, 0.8) * Canvas;
      double Cy = R.uniform(0.2, 0.8) * Canvas;
      double Sigma = R.uniform(0.06, 0.16) * Canvas;
      double Amp = R.uniform(0.5, 1.0) * (B % 2 == 0 ? 1.0 : -1.0);
      for (int64_t Y = 0; Y < Canvas; ++Y)
        for (int64_t X = 0; X < Canvas; ++X) {
          double D2 = (X - Cx) * (X - Cx) + (Y - Cy) * (Y - Cy);
          Proto.at(Y * Canvas + X) +=
              static_cast<float>(Amp * std::exp(-D2 / (2 * Sigma * Sigma)));
        }
    }
    Prototypes.push_back(std::move(Proto));
  }
}

int64_t SyntheticMnist::fillItem(int64_t Index, float *Out) const {
  assert(Index >= 0 && Index < NumItems && "dataset index out of range");
  int64_t Label = Index % NumClasses;
  Rng R(Seed ^ (0x9e3779b9ULL * static_cast<uint64_t>(Index + 1)));
  const int64_t Canvas = Side + 2 * MaxShift;
  int64_t Dx = MaxShift > 0 ? R.uniformInt(2 * MaxShift + 1) : 0;
  int64_t Dy = MaxShift > 0 ? R.uniformInt(2 * MaxShift + 1) : 0;
  const Tensor &Proto = Prototypes[Label];
  for (int64_t Y = 0; Y < Side; ++Y)
    for (int64_t X = 0; X < Side; ++X)
      Out[Y * Side + X] =
          Proto.at((Y + Dy) * Canvas + (X + Dx)) +
          static_cast<float>(R.gaussian(0.0, NoiseStddev));
  return Label;
}

//===----------------------------------------------------------------------===//
// RandomImages
//===----------------------------------------------------------------------===//

RandomImages::RandomImages(int64_t NumItems, Shape ItemDims,
                           int64_t NumClasses, uint64_t Seed)
    : NumItems(NumItems), Dims(std::move(ItemDims)), NumClasses(NumClasses),
      Seed(Seed) {}

int64_t RandomImages::fillItem(int64_t Index, float *Out) const {
  Rng R(Seed ^ (0x2545f4914f6cdd1dULL * static_cast<uint64_t>(Index + 1)));
  for (int64_t I = 0, E = Dims.numElements(); I < E; ++I)
    Out[I] = static_cast<float>(R.gaussian());
  return Index % NumClasses;
}

//===----------------------------------------------------------------------===//
// MemoryDataset and .ltd I/O
//===----------------------------------------------------------------------===//

MemoryDataset::MemoryDataset(Tensor TheItems, Tensor TheLabels)
    : Items(std::move(TheItems)), Labels(std::move(TheLabels)) {
  assert(Items.shape().rank() >= 2 && "items must be (N, dims...)");
  assert(Labels.numElements() == Items.shape().dim(0) &&
         "one label per item");
  Dims = Items.shape().withoutDim(0);
}

int64_t MemoryDataset::fillItem(int64_t Index, float *Out) const {
  int64_t ItemSize = Dims.numElements();
  const float *Src = Items.data() + Index * ItemSize;
  for (int64_t I = 0; I < ItemSize; ++I)
    Out[I] = Src[I];
  return static_cast<int64_t>(Labels.at(Index));
}

bool data::writeDatasetLtd(const Dataset &Ds, const std::string &Path) {
  int64_t N = Ds.size();
  Tensor Items(Ds.itemDims().withPrefix(N));
  Tensor Labels(Shape{N});
  int64_t ItemSize = Ds.itemDims().numElements();
  for (int64_t I = 0; I < N; ++I)
    Labels.at(I) =
        static_cast<float>(Ds.fillItem(I, Items.data() + I * ItemSize));
  return writeLtdFile(Path, {{"data", std::move(Items)},
                             {"label", std::move(Labels)}});
}

MemoryDataset data::readDatasetLtd(const std::string &Path) {
  auto Tensors = readLtdFile(Path);
  Tensor Items, Labels;
  bool HaveData = false, HaveLabel = false;
  for (auto &[Name, T] : Tensors) {
    if (Name == "data") {
      Items = std::move(T);
      HaveData = true;
    } else if (Name == "label") {
      Labels = std::move(T);
      HaveLabel = true;
    }
  }
  if (!HaveData || !HaveLabel)
    reportFatalError(Path + " does not contain 'data' and 'label' tensors");
  return MemoryDataset(std::move(Items), std::move(Labels));
}

//===----------------------------------------------------------------------===//
// Batching helpers
//===----------------------------------------------------------------------===//

solvers::BatchProvider data::batchesOf(const Dataset &Ds) {
  return [&Ds](int64_t Iter, Tensor &Data, Tensor &Labels) {
    int64_t Batch = Data.shape().dim(0);
    int64_t ItemSize = Data.numElements() / Batch;
    assert(ItemSize == Ds.itemDims().numElements() &&
           "batch tensor does not match the dataset item shape");
    for (int64_t I = 0; I < Batch; ++I) {
      int64_t Index = (Iter * Batch + I) % Ds.size();
      Labels.at(I) = static_cast<float>(
          Ds.fillItem(Index, Data.data() + I * ItemSize));
    }
  };
}

double data::evaluateAccuracy(engine::Executor &Ex, const Dataset &Ds,
                              int64_t Count) {
  const compiler::Program &Prog = Ex.program();
  Tensor Data(Ex.shape(Prog.DataBuffer));
  Tensor Labels(Ex.shape(Prog.LabelBuffer));
  int64_t Batch = Prog.BatchSize;
  int64_t ItemSize = Data.numElements() / Batch;
  int64_t Batches = Count / Batch;
  assert(Batches > 0 && "need at least one full batch to evaluate");
  double Sum = 0;
  for (int64_t B = 0; B < Batches; ++B) {
    for (int64_t I = 0; I < Batch; ++I) {
      int64_t Index = (B * Batch + I) % Ds.size();
      Labels.at(I) = static_cast<float>(
          Ds.fillItem(Index, Data.data() + I * ItemSize));
    }
    Ex.setInput(Data);
    Ex.setLabels(Labels);
    Ex.forward();
    Sum += Ex.accuracy();
  }
  return Sum / static_cast<double>(Batches);
}
