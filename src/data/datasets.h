//===- data/datasets.h - Synthetic datasets --------------------*- C++ -*-===//
///
/// \file
/// Data sources for training and benchmarking. Real ImageNet/MNIST data is
/// not available offline, so the repository substitutes synthetic
/// generators with the same shapes (see DESIGN.md): a procedurally
/// generated MNIST-like classification task that small networks learn to
/// >99% (for the Figure 20 accuracy experiment), and random image tensors
/// for throughput benchmarks. Datasets can also be serialized to the .ltd
/// format and read back through LtdDataSource — the stand-in for the
/// paper's HDF5DataLayer.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_DATA_DATASETS_H
#define LATTE_DATA_DATASETS_H

#include "solvers/solvers.h"
#include "support/rng.h"
#include "support/tensor.h"

#include <cstdint>
#include <string>
#include <vector>

namespace latte {
namespace data {

/// Abstract labeled dataset of fixed-shape items.
class Dataset {
public:
  virtual ~Dataset();

  virtual int64_t size() const = 0;
  virtual const Shape &itemDims() const = 0;
  /// Writes item \p Index into \p Out (itemDims-sized) and returns its
  /// class label.
  virtual int64_t fillItem(int64_t Index, float *Out) const = 0;
};

/// MNIST-like synthetic digits: each class has a smooth random prototype
/// image; samples are prototypes with a random sub-pixel shift plus
/// Gaussian noise. Deterministic per (seed, index).
class SyntheticMnist : public Dataset {
public:
  SyntheticMnist(int64_t NumItems, uint64_t Seed = 0xd16175,
                 int64_t NumClasses = 10, int64_t Side = 28,
                 float NoiseStddev = 0.25f, int64_t MaxShift = 2);

  int64_t size() const override { return NumItems; }
  const Shape &itemDims() const override { return Dims; }
  int64_t fillItem(int64_t Index, float *Out) const override;

  int64_t numClasses() const { return NumClasses; }

private:
  int64_t NumItems;
  uint64_t Seed;
  int64_t NumClasses;
  int64_t Side;
  float NoiseStddev;
  int64_t MaxShift;
  Shape Dims;
  std::vector<Tensor> Prototypes; ///< one (Side+2*MaxShift)^2 image/class
};

/// Random Gaussian "images" with arbitrary labels — compute-shape stand-in
/// for ImageNet in throughput benchmarks.
class RandomImages : public Dataset {
public:
  RandomImages(int64_t NumItems, Shape ItemDims, int64_t NumClasses,
               uint64_t Seed = 0x1471e5);

  int64_t size() const override { return NumItems; }
  const Shape &itemDims() const override { return Dims; }
  int64_t fillItem(int64_t Index, float *Out) const override;

private:
  int64_t NumItems;
  Shape Dims;
  int64_t NumClasses;
  uint64_t Seed;
};

/// An in-memory dataset backed by explicit tensors (used by LtdDataSource
/// and tests).
class MemoryDataset : public Dataset {
public:
  MemoryDataset(Tensor Items, Tensor Labels);

  int64_t size() const override { return Items.shape().dim(0); }
  const Shape &itemDims() const override { return Dims; }
  int64_t fillItem(int64_t Index, float *Out) const override;

private:
  Tensor Items;  ///< (N, item dims...)
  Tensor Labels; ///< (N)
  Shape Dims;
};

/// Writes a dataset to a .ltd file holding "data" and "label" tensors.
bool writeDatasetLtd(const Dataset &Ds, const std::string &Path);

/// Reads a dataset previously written by writeDatasetLtd (the
/// HDF5DataLayer substitute of Figure 7).
MemoryDataset readDatasetLtd(const std::string &Path);

/// Builds a BatchProvider that cycles deterministically through \p Ds.
solvers::BatchProvider batchesOf(const Dataset &Ds);

/// Evaluates classification accuracy of \p Ex over \p Count items of
/// \p Ds (rounded down to whole batches).
double evaluateAccuracy(engine::Executor &Ex, const Dataset &Ds,
                        int64_t Count);

} // namespace data
} // namespace latte

#endif // LATTE_DATA_DATASETS_H
