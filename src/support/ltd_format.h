//===- support/ltd_format.h - Latte tensor data files ---------*- C++ -*-===//
///
/// \file
/// The .ltd ("Latte Tensor Data") format is the repository's stand-in for
/// the HDF5 files the paper's HDF5DataLayer reads. A file holds a sequence
/// of named float32 tensors:
///
///   magic "LTD1" | u32 count | { u32 nameLen | name bytes |
///                                u32 rank | i64 dims[rank] | f32 data[] }*
///
/// All integers are little-endian.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SUPPORT_LTD_FORMAT_H
#define LATTE_SUPPORT_LTD_FORMAT_H

#include "support/tensor.h"

#include <string>
#include <utility>
#include <vector>

namespace latte {

/// Writes \p Tensors (name/tensor pairs) to \p Path. Returns false (after
/// printing a diagnostic) on I/O failure.
bool writeLtdFile(const std::string &Path,
                  const std::vector<std::pair<std::string, Tensor>> &Tensors);

/// Reads all tensors from \p Path. Calls reportFatalError on malformed input
/// (the paper's data layer likewise treats unreadable input as fatal).
std::vector<std::pair<std::string, Tensor>>
readLtdFile(const std::string &Path);

} // namespace latte

#endif // LATTE_SUPPORT_LTD_FORMAT_H
