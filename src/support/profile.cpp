//===- support/profile.cpp ------------------------------------*- C++ -*-===//

#include "support/profile.h"

#include <chrono>

using namespace latte;
using namespace latte::prof;

std::atomic<bool> prof::detail::GEnabled{false};

const char *prof::counterName(Counter C) {
  switch (C) {
  case Counter::Flops:
    return "flops";
  case Counter::BytesMoved:
    return "bytes_moved";
  case Counter::TasksExecuted:
    return "tasks_executed";
  case Counter::GemmCalls:
    return "gemm_calls";
  case Counter::FusionHits:
    return "fusion_hits";
  case Counter::KernelCalls:
    return "kernel_calls";
  case Counter::ArenaBytes:
    return "arena_bytes";
  case Counter::EagerBytes:
    return "eager_bytes";
  case Counter::RecomputeFlops:
    return "recompute_flops";
  case Counter::RetainedBytesSaved:
    return "retained_bytes_saved";
  }
  return "unknown";
}

const SpanStat *Summary::find(const std::string &Phase,
                              const std::string &Name) const {
  for (const SpanStat &S : Spans)
    if (S.Phase == Phase && S.Name == Name)
      return &S;
  return nullptr;
}

const CounterSet *Summary::counters(const std::string &Phase) const {
  for (const auto &P : PhaseCounters)
    if (P.first == Phase)
      return &P.second;
  return nullptr;
}

/// Per-thread recording buffer. Spans/PhaseCounters are appended under M
/// (merged by exporters from other threads); Phase and NameStack are
/// owner-thread-only scratch and need no lock.
struct Profiler::ThreadBuf {
  std::mutex M;
  std::vector<Span> Spans;
  std::vector<std::pair<std::string, CounterSet>> PhaseCounters;
  uint32_t Tid = 0;

  const char *Phase = nullptr;               ///< owner-thread only
  std::vector<const std::string *> NameStack; ///< owner-thread only
};

Profiler &Profiler::get() {
  static Profiler P;
  return P;
}

void Profiler::setEnabled(bool On) {
  detail::GEnabled.store(On, std::memory_order_relaxed);
}

uint64_t Profiler::nowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           Epoch)
          .count());
}

Profiler::ThreadBuf &Profiler::threadBuf() {
  thread_local std::shared_ptr<ThreadBuf> TL;
  if (!TL) {
    TL = std::make_shared<ThreadBuf>();
    TL->Tid = NextThreadId.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    Buffers.push_back(TL);
  }
  return *TL;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  for (const auto &B : Buffers) {
    std::lock_guard<std::mutex> BufLock(B->M);
    B->Spans.clear();
    B->PhaseCounters.clear();
  }
}

void Profiler::count(Counter C, uint64_t Delta) {
  if (!enabled())
    return;
  ThreadBuf &B = threadBuf();
  const char *Ph = B.Phase;
  if (!Ph)
    Ph = GlobalPhase.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(B.M);
  for (auto &P : B.PhaseCounters)
    if (P.first == (Ph ? Ph : "")) {
      P.second.add(C, Delta);
      return;
    }
  B.PhaseCounters.emplace_back(Ph ? Ph : "", CounterSet{});
  B.PhaseCounters.back().second.add(C, Delta);
}

std::vector<Span> Profiler::spans() const {
  std::vector<Span> Out;
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  for (const auto &B : Buffers) {
    std::lock_guard<std::mutex> BufLock(B->M);
    Out.insert(Out.end(), B->Spans.begin(), B->Spans.end());
  }
  return Out;
}

Summary Profiler::summary() const {
  Summary S;
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  for (const auto &B : Buffers) {
    std::lock_guard<std::mutex> BufLock(B->M);
    for (const Span &Sp : B->Spans) {
      SpanStat *Stat = nullptr;
      for (SpanStat &Cand : S.Spans)
        if (Cand.Phase == Sp.Phase && Cand.Name == Sp.Name) {
          Stat = &Cand;
          break;
        }
      if (!Stat) {
        S.Spans.push_back({Sp.Phase, Sp.Name, 0, 0.0, 0.0});
        Stat = &S.Spans.back();
      }
      ++Stat->Count;
      double Sec = static_cast<double>(Sp.DurNs) * 1e-9;
      if (!Sp.SelfNested) {
        Stat->TotalSec += Sec;
        if (Sec > Stat->MaxSec)
          Stat->MaxSec = Sec;
      }
    }
    for (const auto &PC : B->PhaseCounters) {
      CounterSet *Set = nullptr;
      for (auto &Existing : S.PhaseCounters)
        if (Existing.first == PC.first) {
          Set = &Existing.second;
          break;
        }
      if (!Set) {
        S.PhaseCounters.emplace_back(PC.first, CounterSet{});
        Set = &S.PhaseCounters.back().second;
      }
      Set->merge(PC.second);
      S.Totals.merge(PC.second);
    }
  }
  return S;
}

//===----------------------------------------------------------------------===//
// RAII helpers
//===----------------------------------------------------------------------===//

ScopedTimer::ScopedTimer(std::string TheName)
    : Active(enabled()), Name(std::move(TheName)) {
  if (!Active)
    return;
  Profiler &P = Profiler::get();
  Profiler::ThreadBuf &B = P.threadBuf();
  const char *Ph = B.Phase;
  if (!Ph)
    Ph = P.GlobalPhase.load(std::memory_order_relaxed);
  Phase = Ph ? Ph : "";
  for (const std::string *Open : B.NameStack)
    if (*Open == Name) {
      SelfNested = true;
      break;
    }
  Depth = static_cast<int>(B.NameStack.size());
  B.NameStack.push_back(&Name);
  StartNs = Profiler::nowNs();
}

ScopedTimer::~ScopedTimer() {
  if (!Active)
    return;
  uint64_t EndNs = Profiler::nowNs();
  Profiler::ThreadBuf &B = Profiler::get().threadBuf();
  // Scoped timers unwind LIFO on their owning thread.
  if (!B.NameStack.empty() && B.NameStack.back() == &Name)
    B.NameStack.pop_back();
  Span S;
  S.Name = std::move(Name);
  S.Phase = std::move(Phase);
  S.ThreadId = B.Tid;
  S.StartNs = StartNs;
  S.DurNs = EndNs - StartNs;
  S.Depth = Depth;
  S.SelfNested = SelfNested;
  std::lock_guard<std::mutex> Lock(B.M);
  B.Spans.push_back(std::move(S));
}

ScopedPhase::ScopedPhase(const char *Phase) : Active(enabled()) {
  if (!Active)
    return;
  Profiler &P = Profiler::get();
  Profiler::ThreadBuf &B = P.threadBuf();
  Prev = B.Phase;
  B.Phase = Phase;
  PrevGlobal = P.GlobalPhase.exchange(Phase, std::memory_order_relaxed);
}

ScopedPhase::~ScopedPhase() {
  if (!Active)
    return;
  Profiler &P = Profiler::get();
  P.threadBuf().Phase = Prev;
  P.GlobalPhase.store(PrevGlobal, std::memory_order_relaxed);
}
