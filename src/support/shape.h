//===- support/shape.h - N-dimensional shapes ------------------*- C++ -*-===//
///
/// \file
/// Shape describes the extents of an N-dimensional array. Latte uses
/// row-major (C) ordering: the LAST dimension varies fastest. An ensemble of
/// neurons arranged as (channels, height, width) therefore stores all `width`
/// entries of a row contiguously.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SUPPORT_SHAPE_H
#define LATTE_SUPPORT_SHAPE_H

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace latte {

class Shape {
public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> Dims) : Dims(Dims) { checkDims(); }
  explicit Shape(std::vector<int64_t> Dims) : Dims(std::move(Dims)) {
    checkDims();
  }

  /// Number of dimensions (rank).
  int rank() const { return static_cast<int>(Dims.size()); }

  int64_t dim(int I) const {
    assert(I >= 0 && I < rank() && "shape dimension out of range");
    return Dims[I];
  }

  int64_t operator[](int I) const { return dim(I); }

  /// Total number of elements (product of extents); 1 for a rank-0 shape.
  int64_t numElements() const;

  const std::vector<int64_t> &dims() const { return Dims; }

  bool operator==(const Shape &Other) const { return Dims == Other.Dims; }
  bool operator!=(const Shape &Other) const { return !(*this == Other); }

  /// Returns a shape with \p Extent prepended (e.g. adding a batch dim).
  Shape withPrefix(int64_t Extent) const;

  /// Returns the shape with dimension \p I removed.
  Shape withoutDim(int I) const;

  /// Row-major strides: Strides[I] is the linear distance between adjacent
  /// elements along dimension I.
  std::vector<int64_t> strides() const;

  /// Converts a multi-index to its row-major linear offset.
  int64_t linearize(const std::vector<int64_t> &Index) const;

  /// Converts a row-major linear offset back to a multi-index.
  std::vector<int64_t> delinearize(int64_t Linear) const;

  /// Renders as e.g. "(64, 224, 224)".
  std::string str() const;

private:
  void checkDims() const {
    for ([[maybe_unused]] int64_t D : Dims)
      assert(D >= 0 && "shape extents must be non-negative");
  }

  std::vector<int64_t> Dims;
};

} // namespace latte

#endif // LATTE_SUPPORT_SHAPE_H
