//===- support/timer.h - Wall-clock timing ---------------------*- C++ -*-===//
///
/// \file
/// Wall-clock timer used by the benchmark harnesses and the runtime's chunk
/// autotuner.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SUPPORT_TIMER_H
#define LATTE_SUPPORT_TIMER_H

#include <chrono>

namespace latte {

class Timer {
public:
  Timer() { reset(); }

  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Runs \p Fn repeatedly and returns the best (minimum) wall time in seconds
/// over \p Reps repetitions, after \p Warmup unmeasured calls. Benchmarks use
/// min-of-N to suppress scheduling noise.
template <typename Callable>
double bestWallTime(Callable &&Fn, int Reps = 3, int Warmup = 1) {
  for (int I = 0; I < Warmup; ++I)
    Fn();
  double Best = 1e100;
  for (int I = 0; I < Reps; ++I) {
    Timer T;
    Fn();
    double S = T.seconds();
    if (S < Best)
      Best = S;
  }
  return Best;
}

} // namespace latte

#endif // LATTE_SUPPORT_TIMER_H
