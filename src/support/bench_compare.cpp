//===- support/bench_compare.cpp ------------------------------*- C++ -*-===//

#include "support/bench_compare.h"

#include <cstdio>

using namespace latte;
using namespace latte::bench;

namespace {

/// Dimensionless count metrics (the serve pseudo-row).
bool isCountMetric(const std::string &Metric) {
  return Metric == "shed" || Metric == "deadline_shed" ||
         Metric == "deadline_missed" || Metric == "interp_fallbacks" ||
         Metric == "chunked_batches" || Metric == "classes_installed";
}

const json::Value *findRow(const json::Value &Doc,
                           const std::string &Label) {
  const json::Value *Rows = Doc.find("rows");
  if (!Rows || !Rows->isArray())
    return nullptr;
  for (const json::Value &Row : Rows->items())
    if (Row.stringAt("label") == Label)
      return &Row;
  return nullptr;
}

} // namespace

CompareResult bench::compareBenchJson(const json::Value &Old,
                                      const json::Value &New,
                                      double Threshold, double MinDeltaSec,
                                      const std::vector<std::string> *OnlyRows,
                                      const std::vector<std::string> *OnlyMetrics) {
  CompareResult R;
  auto RowSelected = [&](const std::string &Label) {
    if (!OnlyRows)
      return true;
    for (const std::string &L : *OnlyRows)
      if (L == Label)
        return true;
    return false;
  };
  auto MetricSelected = [&](const std::string &Metric) {
    if (!OnlyMetrics)
      return true;
    for (const std::string &M : *OnlyMetrics)
      if (M == Metric)
        return true;
    return false;
  };

  std::string OldFig = Old.stringAt("figure"), NewFig = New.stringAt("figure");
  if (!OldFig.empty() && !NewFig.empty() && OldFig != NewFig)
    R.Notes.push_back("figure mismatch: old is '" + OldFig + "', new is '" +
                      NewFig + "'");

  const json::Value *OldRows = Old.find("rows");
  if (!OldRows || !OldRows->isArray()) {
    R.Notes.push_back("old file has no 'rows' array — nothing compared");
    return R;
  }

  static const char *Metrics[] = {"fwd_sec", "bwd_sec", "total_sec"};
  for (const json::Value &OldRow : OldRows->items()) {
    std::string Label = OldRow.stringAt("label");
    if (!RowSelected(Label))
      continue;
    const json::Value *NewRow = findRow(New, Label);
    if (!NewRow) {
      R.Notes.push_back("row '" + Label + "' missing from new file");
      continue;
    }
    for (const char *Metric : Metrics) {
      if (!MetricSelected(Metric))
        continue;
      const json::Value *OldV = OldRow.find(Metric);
      const json::Value *NewV = NewRow->find(Metric);
      if (!OldV || !NewV || !OldV->isNumber() || !NewV->isNumber())
        continue;
      MetricDelta D;
      D.Label = Label;
      D.Metric = Metric;
      D.OldSec = OldV->asNumber();
      D.NewSec = NewV->asNumber();
      R.Compared.push_back(D);
      if (D.OldSec <= 0)
        continue;
      double Delta = D.NewSec - D.OldSec;
      if (D.NewSec > D.OldSec * Threshold && Delta > MinDeltaSec)
        R.Regressions.push_back(D);
      else if (D.NewSec < D.OldSec / Threshold && -Delta > MinDeltaSec)
        R.Improvements.push_back(D);
    }
    // Memory gate: the planned arena size is deterministic (no noise
    // floor), so any growth beyond MemThreshold is a real planner
    // regression. 5% slack absorbs alignment-padding shifts when buffer
    // sets change shape slightly.
    static const double MemThreshold = 1.05;
    const json::Value *OldMem = OldRow.find("arena_bytes");
    const json::Value *NewMem = NewRow->find("arena_bytes");
    if (MetricSelected("arena_bytes") && OldMem && NewMem &&
        OldMem->isNumber() && NewMem->isNumber()) {
      MetricDelta D;
      D.Label = Label;
      D.Metric = "arena_bytes";
      D.OldSec = OldMem->asNumber();
      D.NewSec = NewMem->asNumber();
      R.Compared.push_back(D);
      if (D.OldSec > 0 && D.NewSec > D.OldSec * MemThreshold)
        R.Regressions.push_back(D);
      else if (D.OldSec > 0 && D.NewSec < D.OldSec / MemThreshold)
        R.Improvements.push_back(D);
    }
    // Throughput-style ratio: higher is better, so the regression
    // direction flips. No noise floor — a speedup is already a
    // dimensionless ratio of two measurements from the same run.
    const json::Value *OldSp = OldRow.find("speedup");
    const json::Value *NewSp = NewRow->find("speedup");
    if (MetricSelected("speedup") && OldSp && NewSp && OldSp->isNumber() &&
        NewSp->isNumber()) {
      MetricDelta D;
      D.Label = Label;
      D.Metric = "speedup";
      D.OldSec = OldSp->asNumber();
      D.NewSec = NewSp->asNumber();
      R.Compared.push_back(D);
      if (D.OldSec > 0 && D.NewSec < D.OldSec / Threshold)
        R.Regressions.push_back(D);
      else if (D.OldSec > 0 && D.NewSec > D.OldSec * Threshold)
        R.Improvements.push_back(D);
    }
    // Normalized latency: p50 x the host's own sequential rps — a
    // dimensionless multiple of the single-request service time, so the
    // gate compares scheduling quality across machines. Lower is better;
    // like speedup it is a same-run ratio and needs no absolute noise
    // floor.
    const json::Value *OldLn = OldRow.find("latency_norm");
    const json::Value *NewLn = NewRow->find("latency_norm");
    if (MetricSelected("latency_norm") && OldLn && NewLn &&
        OldLn->isNumber() && NewLn->isNumber()) {
      MetricDelta D;
      D.Label = Label;
      D.Metric = "latency_norm";
      D.OldSec = OldLn->asNumber();
      D.NewSec = NewLn->asNumber();
      R.Compared.push_back(D);
      if (D.OldSec > 0 && D.NewSec > D.OldSec * Threshold)
        R.Regressions.push_back(D);
      else if (D.OldSec > 0 && D.NewSec < D.OldSec / Threshold)
        R.Improvements.push_back(D);
    }
    // Recompute counters are informational (the flops/bytes trade is a
    // deliberate compiler policy, not a perf signal): compared so the
    // report shows drift, never gated. Request rates ride along the
    // serving rows the same way — the gated signal there is "speedup".
    static const char *InfoMetrics[] = {"recompute_flops",
                                        "retained_bytes_saved", "rps"};
    for (const char *Metric : InfoMetrics) {
      if (!MetricSelected(Metric))
        continue;
      const json::Value *OldV = OldRow.find(Metric);
      const json::Value *NewV = NewRow->find(Metric);
      if (!OldV || !NewV || !OldV->isNumber() || !NewV->isNumber())
        continue;
      MetricDelta D;
      D.Label = Label;
      D.Metric = Metric;
      D.OldSec = OldV->asNumber();
      D.NewSec = NewV->asNumber();
      R.Compared.push_back(D);
    }
  }

  // Serving degradation counters ride along informationally whenever both
  // documents carry a "serve" object: shed/fallback drift belongs in the
  // report (and the CI step summary), but the counts are load-dependent
  // and never gate. They answer to the row filter under the pseudo-label
  // "serve", so a hard-gate invocation like `--rows serve_throughput`
  // compares exactly what it names.
  static const char *ServeCounters[] = {"shed",
                                        "deadline_shed",
                                        "deadline_missed",
                                        "interp_fallbacks",
                                        "chunked_batches",
                                        "classes_installed"};
  const json::Value *OldSrv = Old.find("serve");
  const json::Value *NewSrv = New.find("serve");
  if (OldSrv && NewSrv && OldSrv->isObject() && NewSrv->isObject() &&
      RowSelected("serve"))
    for (const char *Metric : ServeCounters) {
      if (!MetricSelected(Metric))
        continue;
      const json::Value *OldV = OldSrv->find(Metric);
      const json::Value *NewV = NewSrv->find(Metric);
      if (!OldV || !NewV || !OldV->isNumber() || !NewV->isNumber())
        continue;
      MetricDelta D;
      D.Label = "serve";
      D.Metric = Metric;
      D.OldSec = OldV->asNumber();
      D.NewSec = NewV->asNumber();
      R.Compared.push_back(D);
    }

  // Rows only in the new file are informational too.
  const json::Value *NewRows = New.find("rows");
  if (NewRows && NewRows->isArray())
    for (const json::Value &NewRow : NewRows->items()) {
      std::string Label = NewRow.stringAt("label");
      if (RowSelected(Label) && !findRow(Old, Label))
        R.Notes.push_back("row '" + Label + "' is new (no baseline)");
    }
  return R;
}

std::string bench::formatCompareReport(const CompareResult &R,
                                       double Threshold) {
  std::string Out;
  char Buf[256];
  auto Line = [&](const MetricDelta &D, const char *Tag) {
    if (D.Metric == "speedup" || D.Metric == "rps" ||
        D.Metric == "latency_norm" || isCountMetric(D.Metric))
      std::snprintf(Buf, sizeof(Buf),
                    "  %-10s %-28s %-11s %12.2f -> %12.2f  (%.2fx)\n",
                    Tag, D.Label.c_str(), D.Metric.c_str(), D.OldSec,
                    D.NewSec, D.ratio());
    else if (D.Metric == "arena_bytes")
      std::snprintf(Buf, sizeof(Buf),
                    "  %-10s %-28s %-11s %9.1f MB -> %9.1f MB  (%.2fx)\n",
                    Tag, D.Label.c_str(), D.Metric.c_str(), D.OldSec / 1e6,
                    D.NewSec / 1e6, D.ratio());
    else
      std::snprintf(Buf, sizeof(Buf),
                    "  %-10s %-28s %-9s %10.3f ms -> %10.3f ms  (%.2fx)\n",
                    Tag, D.Label.c_str(), D.Metric.c_str(), D.OldSec * 1e3,
                    D.NewSec * 1e3, D.ratio());
    Out += Buf;
  };
  std::snprintf(Buf, sizeof(Buf),
                "compared %zu metrics at threshold %.2fx: %zu regressed, "
                "%zu improved\n",
                R.Compared.size(), Threshold, R.Regressions.size(),
                R.Improvements.size());
  Out += Buf;
  for (const MetricDelta &D : R.Regressions)
    Line(D, "REGRESSED");
  for (const MetricDelta &D : R.Improvements)
    Line(D, "improved");
  for (const std::string &N : R.Notes)
    Out += "  note: " + N + "\n";
  return Out;
}

std::string bench::formatCompareMarkdown(const CompareResult &R,
                                         double Threshold) {
  auto Status = [&R](const MetricDelta &D) -> const char * {
    for (const MetricDelta &Reg : R.Regressions)
      if (Reg.Label == D.Label && Reg.Metric == D.Metric)
        return ":red_circle: regressed";
    for (const MetricDelta &Imp : R.Improvements)
      if (Imp.Label == D.Label && Imp.Metric == D.Metric)
        return ":green_circle: improved";
    return "ok";
  };
  auto Cell = [](const MetricDelta &D, double V) {
    char Buf[64];
    if (D.Metric == "arena_bytes" || D.Metric == "retained_bytes_saved")
      std::snprintf(Buf, sizeof(Buf), "%.1f MB", V / 1e6);
    else if (D.Metric == "recompute_flops")
      std::snprintf(Buf, sizeof(Buf), "%.2f Mflop", V / 1e6);
    else if (D.Metric == "speedup")
      std::snprintf(Buf, sizeof(Buf), "%.2fx", V);
    else if (D.Metric == "latency_norm")
      std::snprintf(Buf, sizeof(Buf), "%.2f", V);
    else if (D.Metric == "rps")
      std::snprintf(Buf, sizeof(Buf), "%.1f req/s", V);
    else if (isCountMetric(D.Metric))
      std::snprintf(Buf, sizeof(Buf), "%.0f", V);
    else
      std::snprintf(Buf, sizeof(Buf), "%.3f ms", V * 1e3);
    return std::string(Buf);
  };
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "compared %zu metrics at threshold %.2fx: %zu regressed, "
                "%zu improved\n\n",
                R.Compared.size(), Threshold, R.Regressions.size(),
                R.Improvements.size());
  std::string Out = Buf;
  Out += "| row | metric | baseline | current | ratio | status |\n";
  Out += "|---|---|---:|---:|---:|---|\n";
  for (const MetricDelta &D : R.Compared) {
    std::snprintf(Buf, sizeof(Buf), "%.2fx", D.ratio());
    Out += "| " + D.Label + " | " + D.Metric + " | " + Cell(D, D.OldSec) +
           " | " + Cell(D, D.NewSec) + " | " + Buf + " | " + Status(D) +
           " |\n";
  }
  for (const std::string &N : R.Notes)
    Out += "\n_note: " + N + "_";
  if (!R.Notes.empty())
    Out += "\n";
  return Out;
}
