//===- support/thread_pool.cpp --------------------------------*- C++ -*-===//

#include "support/thread_pool.h"

#include <algorithm>
#include <cassert>

using namespace latte;

namespace {

/// Set while the current thread is executing inside a parallelRun job (on
/// either a worker or the submitting thread). Re-entrant calls would
/// deadlock — the workers are busy with the outer job — so nested
/// parallelFor/parallelRun calls detect this flag and degrade to serial
/// inline execution.
thread_local bool InParallelRegion = false;

struct ParallelRegionGuard {
  ParallelRegionGuard() { InParallelRegion = true; }
  ~ParallelRegionGuard() { InParallelRegion = false; }
};

} // namespace

ThreadPool::ThreadPool(int NumThreads) {
  if (NumThreads <= 0)
    NumThreads = std::max(1u, std::thread::hardware_concurrency());
  // The calling thread counts as worker 0; spawn NumThreads-1 helpers.
  for (int I = 1; I < NumThreads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop(int WorkerIndex) {
  uint64_t SeenEpoch = 0;
  while (true) {
    std::function<void(int)> Fn;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorkers.wait(
          Lock, [&] { return ShuttingDown || Epoch != SeenEpoch; });
      if (ShuttingDown)
        return;
      SeenEpoch = Epoch;
      Fn = Current;
    }
    {
      ParallelRegionGuard Guard;
      Fn(WorkerIndex);
    }
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Remaining == 0)
        JobDone.notify_one();
    }
  }
}

void ThreadPool::parallelRun(const std::function<void(int)> &Fn) {
  if (Workers.empty() || InParallelRegion) {
    // Serial fallback: no helpers, or a nested call from inside a running
    // job (dispatching to the pool again would deadlock).
    ParallelRegionGuard Guard;
    Fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Current = Fn;
    Remaining = static_cast<int>(Workers.size());
    ++Epoch;
  }
  WakeWorkers.notify_all();
  {
    ParallelRegionGuard Guard;
    Fn(0);
  }
  std::unique_lock<std::mutex> Lock(Mutex);
  JobDone.wait(Lock, [&] { return Remaining == 0; });
}

void ThreadPool::parallelFor(int64_t N,
                             const std::function<void(int64_t)> &Fn) {
  if (N <= 0)
    return;
  int T = numThreads();
  if (T == 1 || N == 1 || InParallelRegion) {
    // Nested calls must cover the whole range themselves: the parallelRun
    // fallback would only execute thread 0's partition.
    for (int64_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  parallelRun([&, N, T](int ThreadIndex) {
    // Static contiguous partition of [0, N).
    int64_t Chunk = (N + T - 1) / T;
    int64_t Begin = ThreadIndex * Chunk;
    int64_t End = std::min<int64_t>(N, Begin + Chunk);
    for (int64_t I = Begin; I < End; ++I)
      Fn(I);
  });
}
