//===- support/trace_json.h - Profiler JSON exporters ---------*- C++ -*-===//
///
/// \file
/// Exporters over the profiling layer (support/profile.h):
///
///  - Chrome `trace_event` JSON — the "JSON Array with metadata" flavour:
///    `{"traceEvents": [...]}` with one complete ("ph":"X") event per
///    recorded span. Load the file in chrome://tracing or
///    https://ui.perfetto.dev to see the per-task / per-pass timeline,
///    one track per recording thread.
///
///  - a compact machine-readable summary (per-(phase,name) span aggregates
///    and per-phase counters) consumed by the bench harness's
///    `BENCH_<fig>.json` emitter and the CI regression gate.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SUPPORT_TRACE_JSON_H
#define LATTE_SUPPORT_TRACE_JSON_H

#include "support/json.h"
#include "support/profile.h"

#include <string>

namespace latte {
namespace prof {

/// Builds the Chrome trace_event document from every span recorded so far.
json::Value chromeTrace(const Profiler &P = Profiler::get());

/// Builds the aggregate summary document: {"spans": [...], "counters":
/// {phase: {...}}, "totals": {...}}.
json::Value summaryJson(const Profiler &P = Profiler::get());

/// Serializes the counter set as an object keyed by counterName().
json::Value countersJson(const CounterSet &C);

/// Writes \p Doc to \p Path pretty-printed. Returns false (and fills
/// \p Err) on I/O failure.
bool writeJsonFile(const std::string &Path, const json::Value &Doc,
                   std::string *Err = nullptr);

/// Convenience: chromeTrace() to a file (the `--trace out.json` path).
bool writeChromeTrace(const std::string &Path, std::string *Err = nullptr);

} // namespace prof
} // namespace latte

#endif // LATTE_SUPPORT_TRACE_JSON_H
