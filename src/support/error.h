//===- support/error.h - Fatal errors and unreachable markers -*- C++ -*-===//
///
/// \file
/// Minimal error-handling utilities. The library does not use exceptions;
/// programmatic errors abort via assert / latteUnreachable, and user-input
/// errors (bad files, bad layer configs) abort with a diagnostic through
/// reportFatalError.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SUPPORT_ERROR_H
#define LATTE_SUPPORT_ERROR_H

#include <string>

namespace latte {

/// Prints "latte fatal error: <message>" to stderr and aborts. Used for
/// unrecoverable errors triggered by user input (malformed files, impossible
/// network configurations).
[[noreturn]] void reportFatalError(const std::string &Message);

/// Marks a point in the code that program invariants guarantee is never
/// reached. Aborts with \p Message when reached anyway.
[[noreturn]] void latteUnreachableImpl(const char *Message, const char *File,
                                       unsigned Line);

#define latteUnreachable(MSG)                                                  \
  ::latte::latteUnreachableImpl(MSG, __FILE__, __LINE__)

} // namespace latte

#endif // LATTE_SUPPORT_ERROR_H
