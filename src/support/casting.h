//===- support/casting.h - LLVM-style isa/cast/dyn_cast -------*- C++ -*-===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style. A class hierarchy opts in by exposing
/// a `Kind` discriminator and a static `classof(const Base *)` predicate on
/// each subclass; `isa<>`, `cast<>`, and `dyn_cast<>` then work as in LLVM.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SUPPORT_CASTING_H
#define LATTE_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace latte {

/// Returns true if \p Val is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast<> but tolerates a null argument (propagating it).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace latte

#endif // LATTE_SUPPORT_CASTING_H
