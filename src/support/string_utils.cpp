//===- support/string_utils.cpp -------------------------------*- C++ -*-===//

#include "support/string_utils.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

using namespace latte;

std::string latte::join(const std::vector<std::string> &Parts,
                        const std::string &Sep) {
  std::string Result;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::vector<std::string> latte::split(const std::string &Text, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string::npos) {
      Parts.push_back(Text.substr(Start));
      return Parts;
    }
    Parts.push_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

bool latte::startsWith(const std::string &Text, const std::string &Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

bool latte::contains(const std::string &Text, const std::string &Needle) {
  return Text.find(Needle) != std::string::npos;
}

std::string latte::trim(const std::string &Text) {
  size_t Begin = 0, End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin && std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::string latte::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Size = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Size < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Result(static_cast<size_t>(Size), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}
