//===- support/shape.cpp --------------------------------------*- C++ -*-===//

#include "support/shape.h"

#include <sstream>

using namespace latte;

int64_t Shape::numElements() const {
  int64_t N = 1;
  for (int64_t D : Dims)
    N *= D;
  return N;
}

Shape Shape::withPrefix(int64_t Extent) const {
  std::vector<int64_t> NewDims;
  NewDims.reserve(Dims.size() + 1);
  NewDims.push_back(Extent);
  NewDims.insert(NewDims.end(), Dims.begin(), Dims.end());
  return Shape(std::move(NewDims));
}

Shape Shape::withoutDim(int I) const {
  assert(I >= 0 && I < rank() && "dimension out of range");
  std::vector<int64_t> NewDims = Dims;
  NewDims.erase(NewDims.begin() + I);
  return Shape(std::move(NewDims));
}

std::vector<int64_t> Shape::strides() const {
  std::vector<int64_t> Strides(Dims.size(), 1);
  for (int I = rank() - 2; I >= 0; --I)
    Strides[I] = Strides[I + 1] * Dims[I + 1];
  return Strides;
}

int64_t Shape::linearize(const std::vector<int64_t> &Index) const {
  assert(static_cast<int>(Index.size()) == rank() &&
         "index rank does not match shape rank");
  int64_t Linear = 0;
  for (int I = 0; I < rank(); ++I) {
    assert(Index[I] >= 0 && Index[I] < Dims[I] && "index out of bounds");
    Linear = Linear * Dims[I] + Index[I];
  }
  return Linear;
}

std::vector<int64_t> Shape::delinearize(int64_t Linear) const {
  assert(Linear >= 0 && Linear < numElements() && "offset out of bounds");
  std::vector<int64_t> Index(Dims.size());
  for (int I = rank() - 1; I >= 0; --I) {
    Index[I] = Linear % Dims[I];
    Linear /= Dims[I];
  }
  return Index;
}

std::string Shape::str() const {
  std::ostringstream OS;
  OS << "(";
  for (int I = 0; I < rank(); ++I) {
    if (I)
      OS << ", ";
    OS << Dims[I];
  }
  OS << ")";
  return OS.str();
}
