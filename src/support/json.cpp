//===- support/json.cpp ---------------------------------------*- C++ -*-===//

#include "support/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace latte;
using namespace latte::json;

void Value::set(const std::string &Key, Value V) {
  TheKind = Kind::Object;
  for (auto &M : Members)
    if (M.first == Key) {
      M.second = std::move(V);
      return;
    }
  Members.emplace_back(Key, std::move(V));
}

const Value *Value::find(const std::string &Key) const {
  if (!isObject())
    return nullptr;
  for (const auto &M : Members)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

const Value &Value::at(const std::string &Key) const {
  static const Value Null;
  const Value *V = find(Key);
  return V ? *V : Null;
}

double Value::numberAt(const std::string &Key, double Default) const {
  const Value *V = find(Key);
  return V && V->isNumber() ? V->asNumber() : Default;
}

std::string Value::stringAt(const std::string &Key,
                            const std::string &Default) const {
  const Value *V = find(Key);
  return V && V->isString() ? V->asString() : Default;
}

void json::escape(const std::string &S, std::string &Out) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

namespace {

void appendNumber(std::string &Out, double N) {
  if (!std::isfinite(N)) {
    Out += "null"; // JSON has no Inf/NaN
    return;
  }
  // Integers (the common case for counters) print without an exponent or
  // trailing zeros; everything else gets round-trippable precision.
  if (N == std::floor(N) && std::fabs(N) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0f", N);
    Out += Buf;
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", N);
  Out += Buf;
}

void newline(std::string &Out, int Indent, int Depth) {
  if (Indent < 0)
    return;
  Out += '\n';
  Out.append(static_cast<size_t>(Indent) * Depth, ' ');
}

} // namespace

void Value::dumpTo(std::string &Out, int Indent, int Depth) const {
  switch (TheKind) {
  case Kind::Null:
    Out += "null";
    return;
  case Kind::Bool:
    Out += BoolVal ? "true" : "false";
    return;
  case Kind::Number:
    appendNumber(Out, NumVal);
    return;
  case Kind::String:
    Out += '"';
    escape(StrVal, Out);
    Out += '"';
    return;
  case Kind::Array: {
    if (Items.empty()) {
      Out += "[]";
      return;
    }
    Out += '[';
    for (size_t I = 0; I < Items.size(); ++I) {
      if (I)
        Out += Indent < 0 ? "," : ",";
      newline(Out, Indent, Depth + 1);
      Items[I].dumpTo(Out, Indent, Depth + 1);
    }
    newline(Out, Indent, Depth);
    Out += ']';
    return;
  }
  case Kind::Object: {
    if (Members.empty()) {
      Out += "{}";
      return;
    }
    Out += '{';
    for (size_t I = 0; I < Members.size(); ++I) {
      if (I)
        Out += ",";
      newline(Out, Indent, Depth + 1);
      Out += '"';
      escape(Members[I].first, Out);
      Out += Indent < 0 ? "\":" : "\": ";
      Members[I].second.dumpTo(Out, Indent, Depth + 1);
    }
    newline(Out, Indent, Depth);
    Out += '}';
    return;
  }
  }
}

std::string Value::dump(int Indent) const {
  std::string Out;
  dumpTo(Out, Indent, 0);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

struct Parser {
  const std::string &Text;
  size_t Pos = 0;
  std::string Err;

  explicit Parser(const std::string &Text) : Text(Text) {}

  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return fail(std::string("expected '") + C + "'");
  }

  bool literal(const char *Lit) {
    size_t N = std::strlen(Lit);
    if (Text.compare(Pos, N, Lit) != 0)
      return fail(std::string("invalid literal, expected '") + Lit + "'");
    Pos += N;
    return true;
  }

  bool parseString(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape digit");
        }
        // UTF-8 encode (no surrogate-pair handling; trace/bench data is
        // ASCII plus the occasional BMP char).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseValue(Value &Out) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out = Value::object();
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        if (!consume(':'))
          return false;
        Value Member;
        if (!parseValue(Member))
          return false;
        Out.set(Key, std::move(Member));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        return consume('}');
      }
    }
    if (C == '[') {
      ++Pos;
      Out = Value::array();
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        Value Item;
        if (!parseValue(Item))
          return false;
        Out.push(std::move(Item));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        return consume(']');
      }
    }
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value(std::move(S));
      return true;
    }
    if (C == 't') {
      Out = Value(true);
      return literal("true");
    }
    if (C == 'f') {
      Out = Value(false);
      return literal("false");
    }
    if (C == 'n') {
      Out = Value();
      return literal("null");
    }
    // Number.
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    bool SawDigit = false;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-')) {
      SawDigit |= std::isdigit(static_cast<unsigned char>(Text[Pos])) != 0;
      ++Pos;
    }
    if (!SawDigit)
      return fail("invalid value");
    Out = Value(std::strtod(Text.c_str() + Start, nullptr));
    return true;
  }
};

} // namespace

Value json::parse(const std::string &Text, std::string *Err) {
  Parser P(Text);
  Value V;
  if (!P.parseValue(V)) {
    if (Err)
      *Err = P.Err;
    return Value();
  }
  P.skipWs();
  if (P.Pos != Text.size()) {
    if (Err)
      *Err = "trailing garbage at offset " + std::to_string(P.Pos);
    return Value();
  }
  return V;
}

Value json::parseFile(const std::string &Path, std::string *Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    if (Err)
      *Err = "cannot open '" + Path + "'";
    return Value();
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return parse(SS.str(), Err);
}
