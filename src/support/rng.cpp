//===- support/rng.cpp ----------------------------------------*- C++ -*-===//

#include "support/rng.h"

#include <cassert>
#include <cmath>

using namespace latte;

uint64_t Rng::next() {
  // splitmix64: tiny, fast, and statistically solid for our purposes.
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::uniform(double Lo, double Hi) {
  assert(Lo <= Hi && "uniform bounds reversed");
  return Lo + (Hi - Lo) * uniform();
}

int64_t Rng::uniformInt(int64_t N) {
  assert(N > 0 && "uniformInt requires a positive bound");
  return static_cast<int64_t>(next() % static_cast<uint64_t>(N));
}

double Rng::gaussian() {
  if (HasSpare) {
    HasSpare = false;
    return Spare;
  }
  double U1 = uniform(), U2 = uniform();
  if (U1 < 1e-300)
    U1 = 1e-300;
  double R = std::sqrt(-2.0 * std::log(U1));
  double Theta = 2.0 * M_PI * U2;
  Spare = R * std::sin(Theta);
  HasSpare = true;
  return R * std::cos(Theta);
}

void Rng::fillUniform(Tensor &T, float Lo, float Hi) {
  for (int64_t I = 0, E = T.numElements(); I != E; ++I)
    T.at(I) = static_cast<float>(uniform(Lo, Hi));
}

void Rng::fillGaussian(Tensor &T, float Mean, float Stddev) {
  for (int64_t I = 0, E = T.numElements(); I != E; ++I)
    T.at(I) = static_cast<float>(gaussian(Mean, Stddev));
}

void Rng::fillXavier(Tensor &T, int64_t FanIn) {
  assert(FanIn > 0 && "Xavier init requires positive fan-in");
  float Bound = std::sqrt(3.0f / static_cast<float>(FanIn));
  fillUniform(T, -Bound, Bound);
}
