//===- support/error.cpp --------------------------------------*- C++ -*-===//

#include "support/error.h"

#include <cstdio>
#include <cstdlib>

using namespace latte;

void latte::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "latte fatal error: %s\n", Message.c_str());
  std::fflush(stderr);
  std::abort();
}

void latte::latteUnreachableImpl(const char *Message, const char *File,
                                 unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line,
               Message ? Message : "");
  std::fflush(stderr);
  std::abort();
}
