//===- support/string_utils.h - Small string helpers ----------*- C++ -*-===//
///
/// \file
/// String helpers used by the AST printer, the C++ code generator, and the
/// benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SUPPORT_STRING_UTILS_H
#define LATTE_SUPPORT_STRING_UTILS_H

#include <string>
#include <vector>

namespace latte {

/// Joins \p Parts with \p Sep between elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Splits \p Text on \p Sep; empty fields are preserved.
std::vector<std::string> split(const std::string &Text, char Sep);

/// Returns true when \p Text begins with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

/// Returns true when \p Text contains \p Needle.
bool contains(const std::string &Text, const std::string &Needle);

/// Strips leading and trailing ASCII whitespace.
std::string trim(const std::string &Text);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace latte

#endif // LATTE_SUPPORT_STRING_UTILS_H
