//===- support/rng.h - Deterministic random number generation -*- C++ -*-===//
///
/// \file
/// All randomness in Latte (parameter initialization, synthetic data,
/// dropout masks) flows through Rng so experiments are reproducible from a
/// seed. Includes the Xavier/Glorot initializer used by the standard library
/// layers (paper §4, Figure 4).
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SUPPORT_RNG_H
#define LATTE_SUPPORT_RNG_H

#include "support/tensor.h"

#include <cstdint>

namespace latte {

class Rng {
public:
  explicit Rng(uint64_t Seed = 0x1a77e) : State(Seed ? Seed : 0x9e3779b9) {}

  /// Uniform 64-bit value (splitmix64).
  uint64_t next();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [Lo, Hi).
  double uniform(double Lo, double Hi);

  /// Uniform integer in [0, N).
  int64_t uniformInt(int64_t N);

  /// Standard normal via Box-Muller.
  double gaussian();

  double gaussian(double Mean, double Stddev) {
    return Mean + Stddev * gaussian();
  }

  /// Fills \p T with uniform values in [Lo, Hi).
  void fillUniform(Tensor &T, float Lo, float Hi);

  /// Fills \p T with N(Mean, Stddev) values.
  void fillGaussian(Tensor &T, float Mean, float Stddev);

  /// Xavier/Glorot uniform initialization: U(-a, a) with
  /// a = sqrt(3 / fanIn), matching the variance-preserving scheme the Latte
  /// standard library uses for weighted layers.
  void fillXavier(Tensor &T, int64_t FanIn);

private:
  uint64_t State;
  bool HasSpare = false;
  double Spare = 0.0;
};

} // namespace latte

#endif // LATTE_SUPPORT_RNG_H
