//===- support/trace_json.cpp ---------------------------------*- C++ -*-===//

#include "support/trace_json.h"

#include <algorithm>
#include <fstream>
#include <set>

using namespace latte;
using namespace latte::prof;

json::Value prof::chromeTrace(const Profiler &P) {
  std::vector<Span> Spans = P.spans();
  // Stable timeline: sort by thread, then start time.
  std::sort(Spans.begin(), Spans.end(), [](const Span &A, const Span &B) {
    if (A.ThreadId != B.ThreadId)
      return A.ThreadId < B.ThreadId;
    return A.StartNs < B.StartNs;
  });

  json::Value Events = json::Value::array();
  std::set<uint32_t> SeenThreads;
  for (const Span &S : Spans) {
    if (SeenThreads.insert(S.ThreadId).second) {
      json::Value Meta = json::Value::object();
      Meta.set("name", "thread_name");
      Meta.set("ph", "M");
      Meta.set("pid", 0);
      Meta.set("tid", static_cast<int64_t>(S.ThreadId));
      json::Value Args = json::Value::object();
      Args.set("name", "latte-thread-" + std::to_string(S.ThreadId));
      Meta.set("args", std::move(Args));
      Events.push(std::move(Meta));
    }
    json::Value E = json::Value::object();
    E.set("name", S.Name);
    E.set("cat", S.Phase.empty() ? std::string("latte") : S.Phase);
    E.set("ph", "X");
    E.set("ts", static_cast<double>(S.StartNs) * 1e-3); // microseconds
    E.set("dur", static_cast<double>(S.DurNs) * 1e-3);
    E.set("pid", 0);
    E.set("tid", static_cast<int64_t>(S.ThreadId));
    Events.push(std::move(E));
  }

  json::Value Doc = json::Value::object();
  Doc.set("displayTimeUnit", "ms");
  Doc.set("traceEvents", std::move(Events));
  return Doc;
}

json::Value prof::countersJson(const CounterSet &C) {
  json::Value Obj = json::Value::object();
  for (int I = 0; I < NumCounters; ++I)
    Obj.set(counterName(static_cast<Counter>(I)), C.Values[I]);
  return Obj;
}

json::Value prof::summaryJson(const Profiler &P) {
  Summary S = P.summary();

  json::Value SpanArr = json::Value::array();
  for (const SpanStat &St : S.Spans) {
    json::Value E = json::Value::object();
    E.set("phase", St.Phase);
    E.set("name", St.Name);
    E.set("count", St.Count);
    E.set("total_sec", St.TotalSec);
    E.set("max_sec", St.MaxSec);
    SpanArr.push(std::move(E));
  }

  json::Value PhaseObj = json::Value::object();
  for (const auto &PC : S.PhaseCounters)
    PhaseObj.set(PC.first.empty() ? std::string("(none)") : PC.first,
                 countersJson(PC.second));

  json::Value Doc = json::Value::object();
  Doc.set("spans", std::move(SpanArr));
  Doc.set("counters", std::move(PhaseObj));
  Doc.set("totals", countersJson(S.Totals));
  return Doc;
}

bool prof::writeJsonFile(const std::string &Path, const json::Value &Doc,
                         std::string *Err) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out) {
    if (Err)
      *Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  Out << Doc.dump(2) << "\n";
  if (!Out) {
    if (Err)
      *Err = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

bool prof::writeChromeTrace(const std::string &Path, std::string *Err) {
  return writeJsonFile(Path, chromeTrace(), Err);
}
