//===- support/tensor.h - Aligned float tensors ----------------*- C++ -*-===//
///
/// \file
/// Tensor is the single numeric storage type used throughout Latte: a
/// row-major float32 array with 64-byte-aligned storage (so vectorized
/// kernels can use aligned loads). All ensemble values, gradients, and
/// parameters live in Tensors.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SUPPORT_TENSOR_H
#define LATTE_SUPPORT_TENSOR_H

#include "support/shape.h"

#include <cassert>
#include <cstddef>
#include <memory>

namespace latte {

class Tensor {
public:
  Tensor() = default;

  /// Allocates zero-initialized storage for \p Shape.
  explicit Tensor(Shape Shape);

  Tensor(const Tensor &Other);
  Tensor &operator=(const Tensor &Other);
  Tensor(Tensor &&Other) noexcept = default;
  Tensor &operator=(Tensor &&Other) noexcept = default;

  const Shape &shape() const { return Dims; }
  int64_t numElements() const { return Dims.numElements(); }
  bool empty() const { return numElements() == 0 || !Storage; }

  float *data() { return Storage.get(); }
  const float *data() const { return Storage.get(); }

  float &at(int64_t I) {
    assert(I >= 0 && I < numElements() && "tensor index out of range");
    return Storage.get()[I];
  }
  float at(int64_t I) const {
    assert(I >= 0 && I < numElements() && "tensor index out of range");
    return Storage.get()[I];
  }

  /// Multi-index accessor (row-major).
  float &at(const std::vector<int64_t> &Index) {
    return at(Dims.linearize(Index));
  }
  float at(const std::vector<int64_t> &Index) const {
    return at(Dims.linearize(Index));
  }

  /// Sets every element to \p Value.
  void fill(float Value);

  /// Sets every element to zero.
  void zero() { fill(0.0f); }

  /// Reinterprets the storage with a new shape of identical element count.
  void reshape(const Shape &NewShape);

  /// Element-wise comparison with absolute tolerance; returns the index of
  /// the first mismatch or -1 when all elements agree.
  int64_t firstMismatch(const Tensor &Other, float AbsTol,
                        float RelTol = 0.0f) const;

private:
  struct AlignedDeleter {
    void operator()(float *Ptr) const { ::operator delete[](Ptr, Alignment); }
  };
  static constexpr std::align_val_t Alignment{64};

  Shape Dims;
  std::unique_ptr<float[], AlignedDeleter> Storage;
};

} // namespace latte

#endif // LATTE_SUPPORT_TENSOR_H
