//===- support/thread_pool.h - Simple fork-join thread pool ---*- C++ -*-===//
///
/// \file
/// A small fork-join pool used by the data-parallel runtime (worker replicas,
/// gradient reduction) and by the engine when OpenMP is unavailable. Tasks
/// are submitted as a parallel-for over an index range.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SUPPORT_THREAD_POOL_H
#define LATTE_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace latte {

class ThreadPool {
public:
  /// Creates a pool with \p NumThreads workers (defaults to hardware
  /// concurrency, at least 1).
  explicit ThreadPool(int NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  int numThreads() const { return static_cast<int>(Workers.size()) + 1; }

  /// Runs Fn(I) for I in [0, N), splitting the range statically across the
  /// pool (the calling thread participates). Blocks until all complete.
  /// Nested calls (from inside a running parallelFor/parallelRun job)
  /// execute the whole range serially on the calling thread.
  void parallelFor(int64_t N, const std::function<void(int64_t)> &Fn);

  /// Runs Fn(ThreadIndex) once on every pool thread plus the caller.
  /// ThreadIndex ranges over [0, numThreads()). Nested calls run
  /// Fn(0) inline on the calling thread only.
  void parallelRun(const std::function<void(int)> &Fn);

private:
  struct Job {
    std::function<void(int)> Run; // argument: worker index (1-based)
    uint64_t Epoch = 0;
  };

  void workerLoop(int WorkerIndex);

  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  std::condition_variable JobDone;
  std::function<void(int)> Current;
  uint64_t Epoch = 0;
  int Remaining = 0;
  bool ShuttingDown = false;
};

} // namespace latte

#endif // LATTE_SUPPORT_THREAD_POOL_H
