//===- support/tensor.cpp -------------------------------------*- C++ -*-===//

#include "support/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

using namespace latte;

Tensor::Tensor(Shape Shape) : Dims(std::move(Shape)) {
  int64_t N = Dims.numElements();
  if (N == 0)
    return;
  auto *Raw = static_cast<float *>(
      ::operator new[](static_cast<size_t>(N) * sizeof(float), Alignment));
  Storage.reset(Raw);
  std::memset(Storage.get(), 0, static_cast<size_t>(N) * sizeof(float));
}

Tensor::Tensor(const Tensor &Other) : Tensor(Other.Dims) {
  if (!Other.empty())
    std::memcpy(Storage.get(), Other.Storage.get(),
                static_cast<size_t>(numElements()) * sizeof(float));
}

Tensor &Tensor::operator=(const Tensor &Other) {
  if (this == &Other)
    return *this;
  Tensor Copy(Other);
  *this = std::move(Copy);
  return *this;
}

void Tensor::fill(float Value) {
  if (empty())
    return;
  std::fill_n(Storage.get(), numElements(), Value);
}

void Tensor::reshape(const Shape &NewShape) {
  assert(NewShape.numElements() == Dims.numElements() &&
         "reshape must preserve element count");
  Dims = NewShape;
}

int64_t Tensor::firstMismatch(const Tensor &Other, float AbsTol,
                              float RelTol) const {
  assert(numElements() == Other.numElements() &&
         "mismatch comparison requires equal element counts");
  for (int64_t I = 0, E = numElements(); I != E; ++I) {
    float A = at(I), B = Other.at(I);
    float Tol = AbsTol + RelTol * std::max(std::fabs(A), std::fabs(B));
    if (std::fabs(A - B) > Tol || std::isnan(A) != std::isnan(B))
      return I;
  }
  return -1;
}
