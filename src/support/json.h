//===- support/json.h - Minimal JSON value, parser, writer ----*- C++ -*-===//
///
/// \file
/// A small self-contained JSON library for the instrumentation subsystem:
/// the Chrome-trace and bench-summary exporters build Value trees and dump
/// them; the bench/compare regression gate parses the emitted files back.
/// Deliberately tiny — no external dependency, no streaming, doubles for
/// all numbers (bench data is seconds and small counters).
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SUPPORT_JSON_H
#define LATTE_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace latte {
namespace json {

/// A JSON value. Objects preserve insertion order (stable output diffs).
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() : TheKind(Kind::Null) {}
  Value(bool B) : TheKind(Kind::Bool), BoolVal(B) {}
  Value(double N) : TheKind(Kind::Number), NumVal(N) {}
  Value(int N) : TheKind(Kind::Number), NumVal(N) {}
  Value(int64_t N) : TheKind(Kind::Number), NumVal(static_cast<double>(N)) {}
  Value(uint64_t N) : TheKind(Kind::Number), NumVal(static_cast<double>(N)) {}
  Value(std::string S) : TheKind(Kind::String), StrVal(std::move(S)) {}
  Value(const char *S) : TheKind(Kind::String), StrVal(S) {}

  static Value array() {
    Value V;
    V.TheKind = Kind::Array;
    return V;
  }
  static Value object() {
    Value V;
    V.TheKind = Kind::Object;
    return V;
  }

  Kind kind() const { return TheKind; }
  bool isNull() const { return TheKind == Kind::Null; }
  bool isBool() const { return TheKind == Kind::Bool; }
  bool isNumber() const { return TheKind == Kind::Number; }
  bool isString() const { return TheKind == Kind::String; }
  bool isArray() const { return TheKind == Kind::Array; }
  bool isObject() const { return TheKind == Kind::Object; }

  bool asBool(bool Default = false) const {
    return isBool() ? BoolVal : Default;
  }
  double asNumber(double Default = 0.0) const {
    return isNumber() ? NumVal : Default;
  }
  const std::string &asString() const { return StrVal; }

  // --- arrays ---------------------------------------------------------------

  const std::vector<Value> &items() const { return Items; }
  void push(Value V) { Items.push_back(std::move(V)); }
  size_t size() const {
    return isObject() ? Members.size() : Items.size();
  }

  // --- objects --------------------------------------------------------------

  const std::vector<std::pair<std::string, Value>> &members() const {
    return Members;
  }
  /// Sets (or overwrites) a member.
  void set(const std::string &Key, Value V);
  /// Member lookup; null when absent or when this is not an object.
  const Value *find(const std::string &Key) const;
  Value *find(const std::string &Key) {
    return const_cast<Value *>(
        static_cast<const Value *>(this)->find(Key));
  }
  /// Member lookup with a shared static Null fallback (chainable).
  const Value &at(const std::string &Key) const;
  /// Convenience: numeric member or \p Default when absent / non-numeric.
  double numberAt(const std::string &Key, double Default = 0.0) const;
  /// Convenience: string member or \p Default when absent / non-string.
  std::string stringAt(const std::string &Key,
                       const std::string &Default = "") const;

  /// Serializes. Indent < 0 emits compact single-line JSON; otherwise
  /// pretty-prints with \p Indent spaces per level.
  std::string dump(int Indent = -1) const;

private:
  void dumpTo(std::string &Out, int Indent, int Depth) const;

  Kind TheKind;
  bool BoolVal = false;
  double NumVal = 0.0;
  std::string StrVal;
  std::vector<Value> Items;
  std::vector<std::pair<std::string, Value>> Members;
};

/// Appends \p S to \p Out with JSON string escaping (no surrounding quotes).
void escape(const std::string &S, std::string &Out);

/// Parses \p Text. On failure returns a Null value and, when \p Err is
/// non-null, stores a one-line diagnostic with the byte offset.
Value parse(const std::string &Text, std::string *Err = nullptr);

/// Reads and parses a whole file. On failure (I/O or syntax) returns Null
/// and fills \p Err.
Value parseFile(const std::string &Path, std::string *Err = nullptr);

} // namespace json
} // namespace latte

#endif // LATTE_SUPPORT_JSON_H
