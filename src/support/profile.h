//===- support/profile.h - Low-overhead profiling layer -------*- C++ -*-===//
///
/// \file
/// The instrumentation subsystem: scoped wall-clock timers and hardware-ish
/// counters (FLOPs, bytes moved, tasks executed, GEMM calls, fusion hits)
/// aggregated per phase ("compile", "forward", "backward", ...). Recording
/// is thread-safe — every thread appends to its own registered buffer — so
/// the engine's OpenMP loops and the ThreadPool's data-parallel workers can
/// record concurrently; exporters merge the buffers afterwards.
///
/// Cost model: everything no-ops behind one relaxed atomic-bool load while
/// profiling is disabled (the default — `ExecOptions::Profile=false` and
/// `Profiler::setEnabled(false)`), so instrumented hot paths stay within
/// noise of the uninstrumented build. Callers that would otherwise build a
/// span name eagerly should guard on `prof::enabled()` first.
///
/// Exporters live in support/trace_json.h (Chrome trace_event JSON for
/// chrome://tracing / Perfetto, plus a machine-readable summary).
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SUPPORT_PROFILE_H
#define LATTE_SUPPORT_PROFILE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace latte {
namespace prof {

/// Counters the compiler/engine/runtime increment while profiling.
enum class Counter : int {
  Flops,         ///< floating-point ops attributed to library kernels
  BytesMoved,    ///< bytes read+written by data-movement kernels
  TasksExecuted, ///< top-level program tasks executed by the engine
  GemmCalls,     ///< sgemm library-kernel invocations
  FusionHits,    ///< fusion groups formed at compile time
  KernelCalls,   ///< total library-kernel invocations
  ArenaBytes,    ///< planned arena footprint of constructed executors
  EagerBytes,    ///< eager (per-root) footprint of the same programs
  RecomputeFlops,     ///< extra ops the recompute clones replay in backward
  RetainedBytesSaved, ///< bytes no longer retained across fwd/bwd boundary
};
constexpr int NumCounters = 10;

/// Printable snake_case name ("flops", "bytes_moved", ...).
const char *counterName(Counter C);

struct CounterSet {
  std::array<uint64_t, NumCounters> Values{};

  uint64_t get(Counter C) const { return Values[static_cast<int>(C)]; }
  void add(Counter C, uint64_t Delta) {
    Values[static_cast<int>(C)] += Delta;
  }
  void merge(const CounterSet &Other) {
    for (int I = 0; I < NumCounters; ++I)
      Values[I] += Other.Values[I];
  }
  bool empty() const {
    for (uint64_t V : Values)
      if (V)
        return false;
    return true;
  }
};

/// One completed timed span, as recorded (trace granularity).
struct Span {
  std::string Name;
  std::string Phase;   ///< enclosing phase at the time of recording
  uint32_t ThreadId;   ///< profiler-assigned dense thread id
  uint64_t StartNs;    ///< since the profiler's process-wide epoch
  uint64_t DurNs;
  int Depth;           ///< scoped-timer nesting depth on that thread
  bool SelfNested;     ///< a span with the same name was already open on
                       ///< this thread (recursion) — excluded from
                       ///< aggregate totals to avoid double-counting
};

/// Aggregate of all spans sharing (Phase, Name).
struct SpanStat {
  std::string Phase;
  std::string Name;
  uint64_t Count = 0;  ///< all spans, self-nested included
  double TotalSec = 0; ///< self-nested spans excluded (no double counting)
  double MaxSec = 0;
};

struct Summary {
  std::vector<SpanStat> Spans; ///< recording order of first appearance
  /// Per-phase counter aggregates, first-appearance order.
  std::vector<std::pair<std::string, CounterSet>> PhaseCounters;
  /// Grand total over all phases.
  CounterSet Totals;

  const SpanStat *find(const std::string &Phase,
                       const std::string &Name) const;
  const CounterSet *counters(const std::string &Phase) const;
};

namespace detail {
extern std::atomic<bool> GEnabled;
} // namespace detail

/// True while profiling is globally enabled. This is the only cost paid on
/// hot paths when profiling is off.
inline bool enabled() {
  return detail::GEnabled.load(std::memory_order_relaxed);
}

/// Process-wide profiler singleton holding every thread's buffers.
class Profiler {
public:
  static Profiler &get();

  /// Turns recording on/off. Disabling does not discard recorded data.
  void setEnabled(bool On);
  /// Discards all recorded spans and counters (thread registrations stay).
  void reset();

  /// Monotonic nanoseconds since the profiler epoch.
  static uint64_t nowNs();

  /// Adds \p Delta to counter \p C, attributed to the calling thread's
  /// current phase (or the globally active phase for worker threads that
  /// never set one). No-op while disabled.
  void count(Counter C, uint64_t Delta);

  /// Snapshot of every recorded span, merged across threads (unordered
  /// between threads; in recording order within one).
  std::vector<Span> spans() const;

  /// Aggregated statistics (per-(phase,name) span totals, per-phase
  /// counters).
  Summary summary() const;

private:
  friend class ScopedTimer;
  friend class ScopedPhase;
  struct ThreadBuf;
  Profiler() = default;

  ThreadBuf &threadBuf();

  mutable std::mutex RegistryMutex;
  std::vector<std::shared_ptr<ThreadBuf>> Buffers;
  std::atomic<uint32_t> NextThreadId{0};
  /// Fallback phase for threads (OpenMP / pool workers) that record while
  /// a phase is active on the orchestrating thread.
  std::atomic<const char *> GlobalPhase{nullptr};
};

/// Free-function shorthand for Profiler::get().count(...).
inline void count(Counter C, uint64_t Delta) {
  if (enabled())
    Profiler::get().count(C, Delta);
}

/// RAII span: records [construction, destruction) under the thread's
/// current phase. Safe to construct while disabled (records nothing).
class ScopedTimer {
public:
  explicit ScopedTimer(std::string Name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  bool Active;
  bool SelfNested = false;
  int Depth = 0;
  uint64_t StartNs = 0;
  std::string Name;
  std::string Phase;
};

/// RAII phase label: spans and counters recorded on this thread while the
/// object lives are attributed to \p Phase. Also publishes the phase as the
/// process-wide fallback so worker threads spawned inside the region
/// attribute correctly (single orchestrating thread is the supported
/// pattern; concurrent distinct phases keep their own thread-local labels).
class ScopedPhase {
public:
  explicit ScopedPhase(const char *Phase);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase &) = delete;
  ScopedPhase &operator=(const ScopedPhase &) = delete;

private:
  bool Active;
  const char *Prev = nullptr;
  const char *PrevGlobal = nullptr;
};

} // namespace prof
} // namespace latte

#endif // LATTE_SUPPORT_PROFILE_H
