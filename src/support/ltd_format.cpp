//===- support/ltd_format.cpp ---------------------------------*- C++ -*-===//

#include "support/ltd_format.h"

#include "support/error.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

using namespace latte;

namespace {

constexpr char Magic[4] = {'L', 'T', 'D', '1'};

struct FileCloser {
  void operator()(std::FILE *F) const {
    if (F)
      std::fclose(F);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool writeBytes(std::FILE *F, const void *Data, size_t Size) {
  return std::fwrite(Data, 1, Size, F) == Size;
}

bool readBytes(std::FILE *F, void *Data, size_t Size) {
  return std::fread(Data, 1, Size, F) == Size;
}

} // namespace

bool latte::writeLtdFile(
    const std::string &Path,
    const std::vector<std::pair<std::string, Tensor>> &Tensors) {
  FilePtr F(std::fopen(Path.c_str(), "wb"));
  if (!F) {
    std::fprintf(stderr, "latte: cannot open %s for writing\n", Path.c_str());
    return false;
  }
  uint32_t Count = static_cast<uint32_t>(Tensors.size());
  if (!writeBytes(F.get(), Magic, 4) || !writeBytes(F.get(), &Count, 4))
    return false;
  for (const auto &[Name, T] : Tensors) {
    uint32_t NameLen = static_cast<uint32_t>(Name.size());
    uint32_t Rank = static_cast<uint32_t>(T.shape().rank());
    if (!writeBytes(F.get(), &NameLen, 4) ||
        !writeBytes(F.get(), Name.data(), NameLen) ||
        !writeBytes(F.get(), &Rank, 4))
      return false;
    for (int64_t D : T.shape().dims())
      if (!writeBytes(F.get(), &D, 8))
        return false;
    if (!writeBytes(F.get(), T.data(),
                    static_cast<size_t>(T.numElements()) * sizeof(float)))
      return false;
  }
  return true;
}

std::vector<std::pair<std::string, Tensor>>
latte::readLtdFile(const std::string &Path) {
  FilePtr F(std::fopen(Path.c_str(), "rb"));
  if (!F)
    reportFatalError("cannot open " + Path + " for reading");
  char Header[4];
  uint32_t Count = 0;
  if (!readBytes(F.get(), Header, 4) || std::memcmp(Header, Magic, 4) != 0 ||
      !readBytes(F.get(), &Count, 4))
    reportFatalError(Path + " is not a valid .ltd file. Bad header");

  std::vector<std::pair<std::string, Tensor>> Result;
  Result.reserve(Count);
  for (uint32_t I = 0; I != Count; ++I) {
    uint32_t NameLen = 0;
    if (!readBytes(F.get(), &NameLen, 4) || NameLen > (1u << 20))
      reportFatalError(Path + ": corrupt tensor name length");
    std::string Name(NameLen, '\0');
    uint32_t Rank = 0;
    if (!readBytes(F.get(), Name.data(), NameLen) ||
        !readBytes(F.get(), &Rank, 4) || Rank > 16)
      reportFatalError(Path + ": corrupt tensor record for entry " +
                       std::to_string(I));
    std::vector<int64_t> Dims(Rank);
    for (uint32_t D = 0; D != Rank; ++D)
      if (!readBytes(F.get(), &Dims[D], 8) || Dims[D] < 0)
        reportFatalError(Path + ": corrupt dimension in " + Name);
    Tensor T((Shape(Dims)));
    if (!readBytes(F.get(), T.data(),
                   static_cast<size_t>(T.numElements()) * sizeof(float)))
      reportFatalError(Path + ": truncated data for " + Name);
    Result.emplace_back(std::move(Name), std::move(T));
  }
  return Result;
}
