//===- support/bench_compare.h - Bench JSON regression diff ---*- C++ -*-===//
///
/// \file
/// Compares two `BENCH_<fig>.json` files (the schema bench/harness.h
/// emits) and classifies each timing row as ok / regressed / improved
/// against a ratio threshold. This is the library behind the
/// `bench/compare` CLI that gates CI perf regressions; it lives in
/// support/ so the unit tests can exercise the classification logic
/// without spawning the binary.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SUPPORT_BENCH_COMPARE_H
#define LATTE_SUPPORT_BENCH_COMPARE_H

#include "support/json.h"

#include <string>
#include <vector>

namespace latte {
namespace bench {

/// One compared metric (a row label + which of fwd/bwd/total/arena).
struct MetricDelta {
  std::string Label;
  std::string Metric;  ///< "fwd_sec", "bwd_sec", "total_sec", or
                       ///< "arena_bytes" (OldSec/NewSec then hold bytes)
  double OldSec = 0;
  double NewSec = 0;
  double ratio() const { return OldSec > 0 ? NewSec / OldSec : 0; }
};

struct CompareResult {
  std::vector<MetricDelta> Compared;    ///< every metric present in both
  std::vector<MetricDelta> Regressions; ///< new > old * threshold
  std::vector<MetricDelta> Improvements;///< new < old / threshold
  std::vector<std::string> Notes;       ///< missing rows, figure mismatch
  bool ok() const { return Regressions.empty(); }
};

/// Compares two parsed bench documents. Rows are matched by "label";
/// a row's "total_sec" (and, when present in both, "fwd_sec"/"bwd_sec")
/// is regressed when `new > old * Threshold` and the absolute delta
/// exceeds \p MinDeltaSec (guards against flagging microsecond noise).
/// Rows present in only one file are reported in Notes, not failed —
/// benchmarks gain rows over time. When both rows carry an "arena_bytes"
/// memory column it is gated too, at a fixed 1.05x ratio (the planned
/// arena is deterministic, so growth past alignment slack is a real
/// planner regression, independent of the timing threshold). A "speedup"
/// column is gated in the opposite direction (higher is better: regressed
/// when `new < old / Threshold`) — the serving bench reports its
/// micro-batching throughput gain this way so the gate is
/// machine-normalized (both sides of the ratio come from the same run on
/// the same host). A "latency_norm" column (p50 seconds x the host's own
/// sequential rps — a dimensionless multiple of the single-request
/// service time) is gated lower-is-better like a timing but, being a
/// same-run ratio, needs no absolute noise floor. When \p OnlyRows is
/// non-null, only rows whose label it contains are compared — CI uses
/// this to hard-gate one row (the serving throughput floor) at a tight
/// threshold while a second, informational invocation reports everything
/// loosely. \p OnlyMetrics restricts the compared metric names the same
/// way (e.g. gate exactly `latency_norm` on the serve_p50 row while its
/// absolute `total_sec` stays informational elsewhere). When both
/// documents carry a top-level "serve" object, its shed/fallback counters
/// are compared informationally under the pseudo-row label "serve" —
/// drift shows in the report and the CI step summary, but load-dependent
/// counts never gate.
CompareResult compareBenchJson(const json::Value &Old,
                               const json::Value &New, double Threshold,
                               double MinDeltaSec = 1e-4,
                               const std::vector<std::string> *OnlyRows =
                                   nullptr,
                               const std::vector<std::string> *OnlyMetrics =
                                   nullptr);

/// Renders \p R as the human-readable report the CLI prints.
std::string formatCompareReport(const CompareResult &R, double Threshold);

/// Renders \p R as a GitHub-flavored markdown table (every compared
/// metric, with per-row status) for $GITHUB_STEP_SUMMARY.
std::string formatCompareMarkdown(const CompareResult &R, double Threshold);

} // namespace bench
} // namespace latte

#endif // LATTE_SUPPORT_BENCH_COMPARE_H
