//===- solvers/solvers.h - Training solvers --------------------*- C++ -*-===//
///
/// \file
/// Solvers coordinate the forward, backward, and weight-update phases of
/// training (paper §2.5, §3.4): SGD with momentum, RMSProp, AdaGrad, and
/// AdaDelta, with the learning-rate and momentum policies of the Figure 7
/// example (LRPolicy.Inv, MomPolicy.Fixed) plus Fixed/Step/Exp schedules.
/// `solve()` runs the training loop over an executor and a data source.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SOLVERS_SOLVERS_H
#define LATTE_SOLVERS_SOLVERS_H

#include "engine/executor.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace latte {
namespace solvers {

/// Learning-rate schedule. `at(Iter)` returns the rate for an iteration.
struct LRPolicy {
  enum class Kind { Fixed, Inv, Step, Exp };
  Kind K = Kind::Fixed;
  double Base = 0.01;
  double Gamma = 0.0001; ///< Inv/Step/Exp decay
  double Power = 0.75;   ///< Inv exponent
  int64_t StepSize = 1000;

  static LRPolicy fixed(double Base);
  /// base * (1 + gamma * iter)^-power (the Figure 7 policy).
  static LRPolicy inv(double Base, double Gamma, double Power);
  /// base * gamma^(iter / stepSize).
  static LRPolicy step(double Base, double Gamma, int64_t StepSize);
  /// base * gamma^iter.
  static LRPolicy exp(double Base, double Gamma);

  double at(int64_t Iter) const;
};

/// Momentum schedule (fixed, per the paper's MomPolicy.Fixed).
struct MomPolicy {
  double Value = 0.0;
  static MomPolicy fixed(double Value) { return MomPolicy{Value}; }
};

/// Hyper-parameters shared by all solvers (Figure 7's SolverParameters).
struct SolverParameters {
  LRPolicy Lr = LRPolicy::fixed(0.01);
  MomPolicy Momentum = MomPolicy::fixed(0.9);
  double ReguCoef = 0.0; ///< L2 weight decay
  int64_t MaxIters = 100;
};

/// Base solver: owns per-parameter history state and applies updates.
class Solver {
public:
  explicit Solver(SolverParameters Params) : Params(Params) {}
  virtual ~Solver();

  const SolverParameters &params() const { return Params; }

  /// Applies one update step to every parameter of \p Ex using the
  /// gradients accumulated by the last backward() call.
  void step(engine::Executor &Ex, int64_t Iter);

protected:
  /// Per-parameter update rule. \p History is a lazily allocated state
  /// tensor of the same size (momentum/accumulator); \p History2 a second
  /// one (AdaDelta).
  virtual void update(float *Param, const float *Grad, float *History,
                      float *History2, int64_t Count, double Lr) = 0;

  /// How many history tensors this solver needs (0-2).
  virtual int historyCount() const { return 1; }

  SolverParameters Params;

private:
  std::unordered_map<std::string, Tensor> History, History2;
};

/// Stochastic gradient descent with momentum:
/// v = mom * v - lr * (g + regu * w); w += v.
class SgdSolver : public Solver {
public:
  explicit SgdSolver(SolverParameters P) : Solver(P) {}

protected:
  void update(float *Param, const float *Grad, float *History, float *,
              int64_t Count, double Lr) override;
};

/// RMSProp (Tieleman & Hinton): r = d*r + (1-d)*g^2; w -= lr*g/sqrt(r+eps).
class RmsPropSolver : public Solver {
public:
  RmsPropSolver(SolverParameters P, double Decay = 0.9, double Eps = 1e-8)
      : Solver(P), Decay(Decay), Eps(Eps) {}

protected:
  void update(float *Param, const float *Grad, float *History, float *,
              int64_t Count, double Lr) override;

private:
  double Decay, Eps;
};

/// AdaGrad (Duchi et al.): r += g^2; w -= lr*g/sqrt(r+eps).
class AdaGradSolver : public Solver {
public:
  AdaGradSolver(SolverParameters P, double Eps = 1e-8)
      : Solver(P), Eps(Eps) {}

protected:
  void update(float *Param, const float *Grad, float *History, float *,
              int64_t Count, double Lr) override;

private:
  double Eps;
};

/// AdaDelta (Zeiler): accumulates squared gradients and squared updates.
class AdaDeltaSolver : public Solver {
public:
  AdaDeltaSolver(SolverParameters P, double Decay = 0.95, double Eps = 1e-6)
      : Solver(P), Decay(Decay), Eps(Eps) {}

protected:
  void update(float *Param, const float *Grad, float *History,
              float *History2, int64_t Count, double Lr) override;
  int historyCount() const override { return 2; }

private:
  double Decay, Eps;
};

/// Supplies training batches: fills a data tensor (batch-major) and a label
/// vector for iteration \p Iter.
using BatchProvider =
    std::function<void(int64_t Iter, Tensor &Data, Tensor &Labels)>;

/// Per-iteration statistics passed to the progress callback.
struct TrainStats {
  int64_t Iter = 0;
  double Loss = 0.0;
  double Accuracy = 0.0;
  double LearningRate = 0.0;
};

using ProgressFn = std::function<void(const TrainStats &)>;

/// The training loop (paper's `solve(sgd, net)`): for MaxIters iterations,
/// fetch a batch, run forward/backward, and apply the solver. Returns the
/// final iteration's stats.
TrainStats solve(Solver &S, engine::Executor &Ex,
                 const BatchProvider &Batches,
                 const ProgressFn &Progress = nullptr);

} // namespace solvers
} // namespace latte

#endif // LATTE_SOLVERS_SOLVERS_H
