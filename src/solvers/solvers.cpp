//===- solvers/solvers.cpp ------------------------------------*- C++ -*-===//

#include "solvers/solvers.h"

#include "support/error.h"

#include <cmath>

using namespace latte;
using namespace latte::solvers;

LRPolicy LRPolicy::fixed(double Base) {
  LRPolicy P;
  P.K = Kind::Fixed;
  P.Base = Base;
  return P;
}

LRPolicy LRPolicy::inv(double Base, double Gamma, double Power) {
  LRPolicy P;
  P.K = Kind::Inv;
  P.Base = Base;
  P.Gamma = Gamma;
  P.Power = Power;
  return P;
}

LRPolicy LRPolicy::step(double Base, double Gamma, int64_t StepSize) {
  LRPolicy P;
  P.K = Kind::Step;
  P.Base = Base;
  P.Gamma = Gamma;
  P.StepSize = StepSize;
  return P;
}

LRPolicy LRPolicy::exp(double Base, double Gamma) {
  LRPolicy P;
  P.K = Kind::Exp;
  P.Base = Base;
  P.Gamma = Gamma;
  return P;
}

double LRPolicy::at(int64_t Iter) const {
  switch (K) {
  case Kind::Fixed:
    return Base;
  case Kind::Inv:
    return Base * std::pow(1.0 + Gamma * static_cast<double>(Iter), -Power);
  case Kind::Step:
    return Base * std::pow(Gamma, static_cast<double>(Iter / StepSize));
  case Kind::Exp:
    return Base * std::pow(Gamma, static_cast<double>(Iter));
  }
  latteUnreachable("unknown LR policy kind");
}

Solver::~Solver() = default;

void Solver::step(engine::Executor &Ex, int64_t Iter) {
  double Lr = Params.Lr.at(Iter);
  for (const compiler::ParamBinding &B : Ex.program().Params) {
    float *Param = Ex.data(B.Param);
    float *Grad = Ex.data(B.Grad);
    int64_t Count = Ex.size(B.Param);

    // L2 regularization folds into the gradient before the rule runs.
    if (Params.ReguCoef != 0.0) {
      float Coef = static_cast<float>(Params.ReguCoef);
      for (int64_t I = 0; I < Count; ++I)
        Grad[I] += Coef * Param[I];
    }

    float *H1 = nullptr, *H2 = nullptr;
    if (historyCount() >= 1) {
      auto It = History.find(B.Param);
      if (It == History.end())
        It = History.emplace(B.Param, Tensor(Shape{Count})).first;
      H1 = It->second.data();
    }
    if (historyCount() >= 2) {
      auto It = History2.find(B.Param);
      if (It == History2.end())
        It = History2.emplace(B.Param, Tensor(Shape{Count})).first;
      H2 = It->second.data();
    }
    update(Param, Grad, H1, H2, Count, Lr * B.LrMult);
  }
}

void SgdSolver::update(float *Param, const float *Grad, float *History,
                       float *, int64_t Count, double Lr) {
  const float Mom = static_cast<float>(Params.Momentum.Value);
  const float Rate = static_cast<float>(Lr);
  for (int64_t I = 0; I < Count; ++I) {
    History[I] = Mom * History[I] - Rate * Grad[I];
    Param[I] += History[I];
  }
}

void RmsPropSolver::update(float *Param, const float *Grad, float *History,
                           float *, int64_t Count, double Lr) {
  const float D = static_cast<float>(Decay);
  const float E = static_cast<float>(Eps);
  const float Rate = static_cast<float>(Lr);
  for (int64_t I = 0; I < Count; ++I) {
    History[I] = D * History[I] + (1.0f - D) * Grad[I] * Grad[I];
    Param[I] -= Rate * Grad[I] / std::sqrt(History[I] + E);
  }
}

void AdaGradSolver::update(float *Param, const float *Grad, float *History,
                           float *, int64_t Count, double Lr) {
  const float E = static_cast<float>(Eps);
  const float Rate = static_cast<float>(Lr);
  for (int64_t I = 0; I < Count; ++I) {
    History[I] += Grad[I] * Grad[I];
    Param[I] -= Rate * Grad[I] / std::sqrt(History[I] + E);
  }
}

void AdaDeltaSolver::update(float *Param, const float *Grad, float *History,
                            float *History2, int64_t Count, double) {
  const float D = static_cast<float>(Decay);
  const float E = static_cast<float>(Eps);
  for (int64_t I = 0; I < Count; ++I) {
    History[I] = D * History[I] + (1.0f - D) * Grad[I] * Grad[I];
    float Update = -std::sqrt((History2[I] + E) / (History[I] + E)) * Grad[I];
    History2[I] = D * History2[I] + (1.0f - D) * Update * Update;
    Param[I] += Update;
  }
}

TrainStats solvers::solve(Solver &S, engine::Executor &Ex,
                          const BatchProvider &Batches,
                          const ProgressFn &Progress) {
  const compiler::Program &Prog = Ex.program();
  if (Prog.DataBuffer.empty() || Prog.LabelBuffer.empty())
    reportFatalError("solve() requires a network with data and label "
                     "ensembles");
  Tensor Data(Ex.shape(Prog.DataBuffer));
  Tensor Labels(Ex.shape(Prog.LabelBuffer));

  TrainStats Stats;
  for (int64_t Iter = 0; Iter < S.params().MaxIters; ++Iter) {
    Batches(Iter, Data, Labels);
    Ex.setInput(Data);
    Ex.setLabels(Labels);
    Ex.forward();
    Ex.backward();
    S.step(Ex, Iter);

    Stats.Iter = Iter;
    Stats.Loss = Ex.lossValue();
    Stats.Accuracy = Ex.accuracy();
    Stats.LearningRate = S.params().Lr.at(Iter);
    if (Progress)
      Progress(Stats);
  }
  return Stats;
}
