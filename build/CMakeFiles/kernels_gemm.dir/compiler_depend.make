# Empty compiler generated dependencies file for kernels_gemm.
# This may be replaced when dependencies are built.
