file(REMOVE_RECURSE
  "CMakeFiles/kernels_gemm.dir/bench/kernels_gemm.cpp.o"
  "CMakeFiles/kernels_gemm.dir/bench/kernels_gemm.cpp.o.d"
  "bench/kernels_gemm"
  "bench/kernels_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
