file(REMOVE_RECURSE
  "liblatte.a"
)
