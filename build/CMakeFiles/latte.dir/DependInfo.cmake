
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/caffe/caffe.cpp" "CMakeFiles/latte.dir/src/baselines/caffe/caffe.cpp.o" "gcc" "CMakeFiles/latte.dir/src/baselines/caffe/caffe.cpp.o.d"
  "/root/repo/src/baselines/mocha/mocha.cpp" "CMakeFiles/latte.dir/src/baselines/mocha/mocha.cpp.o" "gcc" "CMakeFiles/latte.dir/src/baselines/mocha/mocha.cpp.o.d"
  "/root/repo/src/compiler/analysis.cpp" "CMakeFiles/latte.dir/src/compiler/analysis.cpp.o" "gcc" "CMakeFiles/latte.dir/src/compiler/analysis.cpp.o.d"
  "/root/repo/src/compiler/codegen_cpp.cpp" "CMakeFiles/latte.dir/src/compiler/codegen_cpp.cpp.o" "gcc" "CMakeFiles/latte.dir/src/compiler/codegen_cpp.cpp.o.d"
  "/root/repo/src/compiler/compiler.cpp" "CMakeFiles/latte.dir/src/compiler/compiler.cpp.o" "gcc" "CMakeFiles/latte.dir/src/compiler/compiler.cpp.o.d"
  "/root/repo/src/compiler/passes.cpp" "CMakeFiles/latte.dir/src/compiler/passes.cpp.o" "gcc" "CMakeFiles/latte.dir/src/compiler/passes.cpp.o.d"
  "/root/repo/src/compiler/synthesis.cpp" "CMakeFiles/latte.dir/src/compiler/synthesis.cpp.o" "gcc" "CMakeFiles/latte.dir/src/compiler/synthesis.cpp.o.d"
  "/root/repo/src/core/graph.cpp" "CMakeFiles/latte.dir/src/core/graph.cpp.o" "gcc" "CMakeFiles/latte.dir/src/core/graph.cpp.o.d"
  "/root/repo/src/core/layers/layers.cpp" "CMakeFiles/latte.dir/src/core/layers/layers.cpp.o" "gcc" "CMakeFiles/latte.dir/src/core/layers/layers.cpp.o.d"
  "/root/repo/src/core/layers/recurrent.cpp" "CMakeFiles/latte.dir/src/core/layers/recurrent.cpp.o" "gcc" "CMakeFiles/latte.dir/src/core/layers/recurrent.cpp.o.d"
  "/root/repo/src/core/neuron_type.cpp" "CMakeFiles/latte.dir/src/core/neuron_type.cpp.o" "gcc" "CMakeFiles/latte.dir/src/core/neuron_type.cpp.o.d"
  "/root/repo/src/data/datasets.cpp" "CMakeFiles/latte.dir/src/data/datasets.cpp.o" "gcc" "CMakeFiles/latte.dir/src/data/datasets.cpp.o.d"
  "/root/repo/src/engine/executor.cpp" "CMakeFiles/latte.dir/src/engine/executor.cpp.o" "gcc" "CMakeFiles/latte.dir/src/engine/executor.cpp.o.d"
  "/root/repo/src/ir/ast.cpp" "CMakeFiles/latte.dir/src/ir/ast.cpp.o" "gcc" "CMakeFiles/latte.dir/src/ir/ast.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "CMakeFiles/latte.dir/src/ir/printer.cpp.o" "gcc" "CMakeFiles/latte.dir/src/ir/printer.cpp.o.d"
  "/root/repo/src/ir/visitor.cpp" "CMakeFiles/latte.dir/src/ir/visitor.cpp.o" "gcc" "CMakeFiles/latte.dir/src/ir/visitor.cpp.o.d"
  "/root/repo/src/kernels/elementwise.cpp" "CMakeFiles/latte.dir/src/kernels/elementwise.cpp.o" "gcc" "CMakeFiles/latte.dir/src/kernels/elementwise.cpp.o.d"
  "/root/repo/src/kernels/gemm.cpp" "CMakeFiles/latte.dir/src/kernels/gemm.cpp.o" "gcc" "CMakeFiles/latte.dir/src/kernels/gemm.cpp.o.d"
  "/root/repo/src/kernels/im2col.cpp" "CMakeFiles/latte.dir/src/kernels/im2col.cpp.o" "gcc" "CMakeFiles/latte.dir/src/kernels/im2col.cpp.o.d"
  "/root/repo/src/kernels/pooling.cpp" "CMakeFiles/latte.dir/src/kernels/pooling.cpp.o" "gcc" "CMakeFiles/latte.dir/src/kernels/pooling.cpp.o.d"
  "/root/repo/src/kernels/softmax.cpp" "CMakeFiles/latte.dir/src/kernels/softmax.cpp.o" "gcc" "CMakeFiles/latte.dir/src/kernels/softmax.cpp.o.d"
  "/root/repo/src/models/models.cpp" "CMakeFiles/latte.dir/src/models/models.cpp.o" "gcc" "CMakeFiles/latte.dir/src/models/models.cpp.o.d"
  "/root/repo/src/runtime/accelerator.cpp" "CMakeFiles/latte.dir/src/runtime/accelerator.cpp.o" "gcc" "CMakeFiles/latte.dir/src/runtime/accelerator.cpp.o.d"
  "/root/repo/src/runtime/cluster_sim.cpp" "CMakeFiles/latte.dir/src/runtime/cluster_sim.cpp.o" "gcc" "CMakeFiles/latte.dir/src/runtime/cluster_sim.cpp.o.d"
  "/root/repo/src/runtime/data_parallel.cpp" "CMakeFiles/latte.dir/src/runtime/data_parallel.cpp.o" "gcc" "CMakeFiles/latte.dir/src/runtime/data_parallel.cpp.o.d"
  "/root/repo/src/solvers/solvers.cpp" "CMakeFiles/latte.dir/src/solvers/solvers.cpp.o" "gcc" "CMakeFiles/latte.dir/src/solvers/solvers.cpp.o.d"
  "/root/repo/src/support/error.cpp" "CMakeFiles/latte.dir/src/support/error.cpp.o" "gcc" "CMakeFiles/latte.dir/src/support/error.cpp.o.d"
  "/root/repo/src/support/ltd_format.cpp" "CMakeFiles/latte.dir/src/support/ltd_format.cpp.o" "gcc" "CMakeFiles/latte.dir/src/support/ltd_format.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "CMakeFiles/latte.dir/src/support/rng.cpp.o" "gcc" "CMakeFiles/latte.dir/src/support/rng.cpp.o.d"
  "/root/repo/src/support/shape.cpp" "CMakeFiles/latte.dir/src/support/shape.cpp.o" "gcc" "CMakeFiles/latte.dir/src/support/shape.cpp.o.d"
  "/root/repo/src/support/string_utils.cpp" "CMakeFiles/latte.dir/src/support/string_utils.cpp.o" "gcc" "CMakeFiles/latte.dir/src/support/string_utils.cpp.o.d"
  "/root/repo/src/support/tensor.cpp" "CMakeFiles/latte.dir/src/support/tensor.cpp.o" "gcc" "CMakeFiles/latte.dir/src/support/tensor.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "CMakeFiles/latte.dir/src/support/thread_pool.cpp.o" "gcc" "CMakeFiles/latte.dir/src/support/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
