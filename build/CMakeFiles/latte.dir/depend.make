# Empty dependencies file for latte.
# This may be replaced when dependencies are built.
