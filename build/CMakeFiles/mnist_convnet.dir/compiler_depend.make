# Empty compiler generated dependencies file for mnist_convnet.
# This may be replaced when dependencies are built.
