file(REMOVE_RECURSE
  "CMakeFiles/mnist_convnet.dir/examples/mnist_convnet.cpp.o"
  "CMakeFiles/mnist_convnet.dir/examples/mnist_convnet.cpp.o.d"
  "examples/mnist_convnet"
  "examples/mnist_convnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnist_convnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
