# Empty compiler generated dependencies file for fig16_mocha.
# This may be replaced when dependencies are built.
