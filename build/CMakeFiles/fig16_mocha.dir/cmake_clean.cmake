file(REMOVE_RECURSE
  "CMakeFiles/fig16_mocha.dir/bench/fig16_mocha.cpp.o"
  "CMakeFiles/fig16_mocha.dir/bench/fig16_mocha.cpp.o.d"
  "bench/fig16_mocha"
  "bench/fig16_mocha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_mocha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
