file(REMOVE_RECURSE
  "CMakeFiles/fig19_weak_scaling.dir/bench/fig19_weak_scaling.cpp.o"
  "CMakeFiles/fig19_weak_scaling.dir/bench/fig19_weak_scaling.cpp.o.d"
  "bench/fig19_weak_scaling"
  "bench/fig19_weak_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
