# Empty dependencies file for lstm_sequence.
# This may be replaced when dependencies are built.
