file(REMOVE_RECURSE
  "CMakeFiles/lstm_sequence.dir/examples/lstm_sequence.cpp.o"
  "CMakeFiles/lstm_sequence.dir/examples/lstm_sequence.cpp.o.d"
  "examples/lstm_sequence"
  "examples/lstm_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lstm_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
