# Empty dependencies file for layer_ops.
# This may be replaced when dependencies are built.
