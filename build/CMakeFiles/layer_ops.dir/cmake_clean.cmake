file(REMOVE_RECURSE
  "CMakeFiles/layer_ops.dir/bench/layer_ops.cpp.o"
  "CMakeFiles/layer_ops.dir/bench/layer_ops.cpp.o.d"
  "bench/layer_ops"
  "bench/layer_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
