# Empty dependencies file for latte_tests.
# This may be replaced when dependencies are built.
