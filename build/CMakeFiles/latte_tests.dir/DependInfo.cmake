
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/baselines_test.cpp" "CMakeFiles/latte_tests.dir/tests/baselines/baselines_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/baselines/baselines_test.cpp.o.d"
  "/root/repo/tests/compiler/analysis_test.cpp" "CMakeFiles/latte_tests.dir/tests/compiler/analysis_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/compiler/analysis_test.cpp.o.d"
  "/root/repo/tests/compiler/codegen_test.cpp" "CMakeFiles/latte_tests.dir/tests/compiler/codegen_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/compiler/codegen_test.cpp.o.d"
  "/root/repo/tests/compiler/compile_exec_test.cpp" "CMakeFiles/latte_tests.dir/tests/compiler/compile_exec_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/compiler/compile_exec_test.cpp.o.d"
  "/root/repo/tests/compiler/fidelity_test.cpp" "CMakeFiles/latte_tests.dir/tests/compiler/fidelity_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/compiler/fidelity_test.cpp.o.d"
  "/root/repo/tests/compiler/passes_test.cpp" "CMakeFiles/latte_tests.dir/tests/compiler/passes_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/compiler/passes_test.cpp.o.d"
  "/root/repo/tests/compiler/property_sweep_test.cpp" "CMakeFiles/latte_tests.dir/tests/compiler/property_sweep_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/compiler/property_sweep_test.cpp.o.d"
  "/root/repo/tests/core/graph_test.cpp" "CMakeFiles/latte_tests.dir/tests/core/graph_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/core/graph_test.cpp.o.d"
  "/root/repo/tests/core/recurrent_test.cpp" "CMakeFiles/latte_tests.dir/tests/core/recurrent_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/core/recurrent_test.cpp.o.d"
  "/root/repo/tests/engine/engine_test.cpp" "CMakeFiles/latte_tests.dir/tests/engine/engine_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/engine/engine_test.cpp.o.d"
  "/root/repo/tests/ir/ast_test.cpp" "CMakeFiles/latte_tests.dir/tests/ir/ast_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/ir/ast_test.cpp.o.d"
  "/root/repo/tests/kernels/elementwise_test.cpp" "CMakeFiles/latte_tests.dir/tests/kernels/elementwise_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/kernels/elementwise_test.cpp.o.d"
  "/root/repo/tests/kernels/gemm_test.cpp" "CMakeFiles/latte_tests.dir/tests/kernels/gemm_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/kernels/gemm_test.cpp.o.d"
  "/root/repo/tests/kernels/im2col_pool_test.cpp" "CMakeFiles/latte_tests.dir/tests/kernels/im2col_pool_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/kernels/im2col_pool_test.cpp.o.d"
  "/root/repo/tests/runtime/runtime_test.cpp" "CMakeFiles/latte_tests.dir/tests/runtime/runtime_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/runtime/runtime_test.cpp.o.d"
  "/root/repo/tests/solvers/solvers_test.cpp" "CMakeFiles/latte_tests.dir/tests/solvers/solvers_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/solvers/solvers_test.cpp.o.d"
  "/root/repo/tests/support/misc_test.cpp" "CMakeFiles/latte_tests.dir/tests/support/misc_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/support/misc_test.cpp.o.d"
  "/root/repo/tests/support/rng_test.cpp" "CMakeFiles/latte_tests.dir/tests/support/rng_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/support/rng_test.cpp.o.d"
  "/root/repo/tests/support/shape_test.cpp" "CMakeFiles/latte_tests.dir/tests/support/shape_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/support/shape_test.cpp.o.d"
  "/root/repo/tests/support/tensor_test.cpp" "CMakeFiles/latte_tests.dir/tests/support/tensor_test.cpp.o" "gcc" "CMakeFiles/latte_tests.dir/tests/support/tensor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/latte.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
