file(REMOVE_RECURSE
  "CMakeFiles/custom_neuron.dir/examples/custom_neuron.cpp.o"
  "CMakeFiles/custom_neuron.dir/examples/custom_neuron.cpp.o.d"
  "examples/custom_neuron"
  "examples/custom_neuron.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_neuron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
