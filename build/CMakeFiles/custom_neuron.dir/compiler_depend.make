# Empty compiler generated dependencies file for custom_neuron.
# This may be replaced when dependencies are built.
