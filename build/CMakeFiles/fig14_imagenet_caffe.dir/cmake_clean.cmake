file(REMOVE_RECURSE
  "CMakeFiles/fig14_imagenet_caffe.dir/bench/fig14_imagenet_caffe.cpp.o"
  "CMakeFiles/fig14_imagenet_caffe.dir/bench/fig14_imagenet_caffe.cpp.o.d"
  "bench/fig14_imagenet_caffe"
  "bench/fig14_imagenet_caffe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_imagenet_caffe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
