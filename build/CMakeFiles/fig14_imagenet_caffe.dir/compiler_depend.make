# Empty compiler generated dependencies file for fig14_imagenet_caffe.
# This may be replaced when dependencies are built.
