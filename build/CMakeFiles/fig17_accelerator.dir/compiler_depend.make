# Empty compiler generated dependencies file for fig17_accelerator.
# This may be replaced when dependencies are built.
