file(REMOVE_RECURSE
  "CMakeFiles/fig17_accelerator.dir/bench/fig17_accelerator.cpp.o"
  "CMakeFiles/fig17_accelerator.dir/bench/fig17_accelerator.cpp.o.d"
  "bench/fig17_accelerator"
  "bench/fig17_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
