file(REMOVE_RECURSE
  "CMakeFiles/fig20_mnist_accuracy.dir/bench/fig20_mnist_accuracy.cpp.o"
  "CMakeFiles/fig20_mnist_accuracy.dir/bench/fig20_mnist_accuracy.cpp.o.d"
  "bench/fig20_mnist_accuracy"
  "bench/fig20_mnist_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_mnist_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
