# Empty compiler generated dependencies file for fig20_mnist_accuracy.
# This may be replaced when dependencies are built.
