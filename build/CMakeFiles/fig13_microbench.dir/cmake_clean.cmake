file(REMOVE_RECURSE
  "CMakeFiles/fig13_microbench.dir/bench/fig13_microbench.cpp.o"
  "CMakeFiles/fig13_microbench.dir/bench/fig13_microbench.cpp.o.d"
  "bench/fig13_microbench"
  "bench/fig13_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
