file(REMOVE_RECURSE
  "CMakeFiles/fig15_vgg_groups.dir/bench/fig15_vgg_groups.cpp.o"
  "CMakeFiles/fig15_vgg_groups.dir/bench/fig15_vgg_groups.cpp.o.d"
  "bench/fig15_vgg_groups"
  "bench/fig15_vgg_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_vgg_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
