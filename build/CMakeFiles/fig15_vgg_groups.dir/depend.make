# Empty dependencies file for fig15_vgg_groups.
# This may be replaced when dependencies are built.
