//===- bench/fig18_strong_scaling.cpp - Figure 18 --------------*- C++ -*-===//
///
/// Figure 18: strong scaling on the Cori supercomputer — VGG training
/// with a fixed global batch of 512 split across 1-64 nodes; the paper
/// reports 84% efficiency at 32 nodes, the drop coming from shrinking
/// per-node batches. Per-layer compute times are measured on the real
/// engine and scaled to batch 512; the cluster (Cray Aries-class network,
/// ring allreduce overlapped with back-propagation per §5.3) is the
/// discrete-event simulator of runtime/cluster_sim.h.
///
//===----------------------------------------------------------------------===//

#include "harness.h"

#include "runtime/cluster_sim.h"

using namespace latte;
using namespace latte::bench;
using namespace latte::runtime;

int main() {
  const double Scale = 0.25;
  const int64_t MeasureBatch = 4;
  const int64_t GlobalBatch = 512;
  models::ModelSpec Spec = models::vggA(Scale);

  printHeader("Figure 18: strong scaling, fixed global batch 512 (VGG)",
              Spec.Name + " at scale " + std::to_string(Scale) +
                  "; compute measured at batch " +
                  std::to_string(MeasureBatch) + ", scaled to 512");

  // Calibrate a compute rate (seconds per FLOP) on the scaled model, then
  // build the simulation profiles from the FULL-SCALE VGG structure — the
  // experiment being reproduced ran full VGG; only the machine's rate is
  // borrowed from this host.
  PassTimes T = timeLatte(Spec, MeasureBatch, {}, 2);
  auto SumFlops = [](const models::ModelSpec &S) {
    double Total = 0;
    for (double F : layerFlops(S))
      Total += F;
    return Total;
  };
  models::ModelSpec FullSpec = models::vggA(1.0);
  double RateFwd = T.FwdSec / (SumFlops(Spec) * MeasureBatch);
  double RateBwd = T.BwdSec / (SumFlops(Spec) * MeasureBatch);
  double FullFlops = SumFlops(FullSpec);
  std::vector<LayerProfile> Profiles = estimateLayerProfiles(
      FullSpec, GlobalBatch, RateFwd * FullFlops * GlobalBatch,
      RateBwd * FullFlops * GlobalBatch);

  ClusterConfig C;
  C.Network.LatencySec = 2e-6;            // Aries-class
  C.Network.BandwidthBytesPerSec = 10e9;  // ~80 Gb/s links
  double T1 = 0;
  std::printf("%6s %14s %14s %12s   %s\n", "nodes", "iter (ms)",
              "images/s", "efficiency", "paper");
  for (int Nodes : {1, 2, 4, 8, 16, 32, 64}) {
    C.Nodes = Nodes;
    ClusterResult R =
        simulateIteration(Profiles, C, GlobalBatch / Nodes, GlobalBatch);
    if (Nodes == 1)
      T1 = R.IterSeconds;
    double Eff = T1 / (Nodes * R.IterSeconds);
    const char *Paper = Nodes == 32 ? "84% at 32 nodes" : "";
    std::printf("%6d %14.1f %14.1f %11.0f%%   %s\n", Nodes,
                R.IterSeconds * 1e3, GlobalBatch / R.IterSeconds,
                100.0 * Eff, Paper);
  }
  return 0;
}
