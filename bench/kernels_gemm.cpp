//===- bench/kernels_gemm.cpp - GEMM kernel microbenchmarks ---*- C++ -*-===//
///
/// google-benchmark microbenchmarks of the library kernel the pattern
/// matcher targets: blocked sgemm vs the scalar reference, over the matrix
/// shapes Latte's convolutions and FC layers actually produce.
///
//===----------------------------------------------------------------------===//

#include "kernels/gemm.h"
#include "support/rng.h"
#include "support/tensor.h"

#include <benchmark/benchmark.h>

using namespace latte;

namespace {

void fill(Tensor &T, uint64_t Seed) {
  Rng R(Seed);
  R.fillGaussian(T, 0.0f, 1.0f);
}

void runGemm(benchmark::State &State, bool Vectorized) {
  const int64_t M = State.range(0);
  const int64_t N = State.range(1);
  const int64_t K = State.range(2);
  Tensor A(Shape{M, K}), B(Shape{K, N}), C(Shape{M, N});
  fill(A, 1);
  fill(B, 2);
  for (auto _ : State) {
    if (Vectorized)
      kernels::sgemm(false, false, M, N, K, A.data(), K, B.data(), N,
                     C.data(), N, false);
    else
      kernels::sgemmNaive(false, false, M, N, K, A.data(), K, B.data(), N,
                          C.data(), N, false);
    benchmark::DoNotOptimize(C.data());
  }
  State.SetItemsProcessed(State.iterations() * 2 * M * N * K);
}

void BM_SgemmBlocked(benchmark::State &State) { runGemm(State, true); }
void BM_SgemmNaive(benchmark::State &State) { runGemm(State, false); }

} // namespace

// Conv-shaped (C = filters x spatial) and FC-shaped (batch x outputs).
BENCHMARK(BM_SgemmBlocked)
    ->Args({64, 56 * 56, 27})   // VGG conv1_1 at half scale
    ->Args({128, 28 * 28, 576}) // VGG conv2_1
    ->Args({64, 512, 512})      // FC-shaped
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SgemmNaive)
    ->Args({64, 56 * 56, 27})
    ->Args({128, 28 * 28, 576})
    ->Args({64, 512, 512})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
