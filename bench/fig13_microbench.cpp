//===- bench/fig13_microbench.cpp - Figure 13 ------------------*- C++ -*-===//
///
/// Figure 13: the cross-layer-optimization microbenchmark — the first
/// three layers of VGG (conv3-64 + ReLU + 2x2 max pool). The paper reports
/// Latte with parallelization alone beating Caffe by >7x on 36 cores, and
/// the fully optimized compiler (tiling + fusion + vectorization) reaching
/// 17.0x / 15.0x / 15.7x for forward / backward / forward+backward.
///
/// This harness reproduces the ablation structure: the Caffe baseline
/// (static per-layer kernels, im2col + GEMM), Latte without cross-layer
/// optimizations, Latte with tiling+fusion, and Latte additionally without
/// vectorized kernels (isolating the vectorization term). The
/// parallelization factor scales with the machine's cores (the paper had
/// 36; see EXPERIMENTS.md).
///
/// `--json BENCH_fig13.json` additionally emits the machine-readable
/// summary (timing rows, per-pass compile times, per-task execution spans,
/// counters) that bench/compare diffs in CI; `--trace trace.json` emits a
/// Chrome trace. `--scale/--batch/--reps` shrink the run for smoke tests.
///
//===----------------------------------------------------------------------===//

#include "harness.h"

using namespace latte;
using namespace latte::bench;
using namespace latte::compiler;

int main(int argc, char **argv) {
  // Defaults match the paper: full 224x224, batch 2.
  BenchOptions BO = parseBenchArgs(argc, argv, /*DefScale=*/1.0,
                                   /*DefBatch=*/2, /*DefReps=*/3);
  models::ModelSpec Spec = models::vggFirstThreeLayers(BO.Scale);

  printHeader("Figure 13: cross-layer fusion microbenchmark "
              "(first 3 layers of VGG)",
              "conv3-64 + ReLU + maxpool2 at " + Spec.InputDims.str() +
                  ", batch " + std::to_string(BO.Batch));

  PassTimes Caffe = timeBaseline(Spec, BO.Batch, /*Naive=*/false, BO.Reps);

  CompileOptions Base; // pattern matching + parallel loops; no cross-layer
  Base.Tiling = false;
  Base.Fusion = false;
  PassTimes LatteBase = timeLatte(Spec, BO.Batch, Base, BO.Reps);

  CompileOptions Full; // + tiling + fusion (the paper's full stack)
  Full.TileSize = 8;
  PassTimes LatteFull = timeLatte(Spec, BO.Batch, Full, BO.Reps);

  CompileOptions NoVec = Full; // ablate vectorized kernels
  NoVec.VectorKernels = false;
  PassTimes LatteNoVec = timeLatte(Spec, BO.Batch, NoVec, BO.Reps);

  CompileOptions FullJit = Full; // + in-process JIT dispatch (src/jit)
  FullJit.Jit = true;
  bool JitActive = false;
  PassTimes LatteJit =
      timeLatte(Spec, BO.Batch, FullJit, BO.Reps, &JitActive);

  CompileOptions FullRotate = Full; // + sub-unit slice rotation
  FullRotate.SliceRotation = true;
  PassTimes LatteRotate = timeLatte(Spec, BO.Batch, FullRotate, BO.Reps);

  std::printf("\n-- Latte (no cross-layer optimizations) vs Caffe --\n");
  printSpeedupRow("forward", Caffe.FwdSec, LatteBase.FwdSec, ">7x (36c)");
  printSpeedupRow("backward", Caffe.BwdSec, LatteBase.BwdSec, ">7x (36c)");
  printSpeedupRow("forward+backward", Caffe.total(), LatteBase.total(),
                  ">7x (36c)");

  std::printf("\n-- Latte (tiling + fusion + vectorization) vs Caffe --\n");
  printSpeedupRow("forward", Caffe.FwdSec, LatteFull.FwdSec, "17.0x (36c)");
  printSpeedupRow("backward", Caffe.BwdSec, LatteFull.BwdSec,
                  "15.0x (36c)");
  printSpeedupRow("forward+backward", Caffe.total(), LatteFull.total(),
                  "15.7x (36c)");

  std::printf("\n-- ablation: contribution of each optimization "
              "(fwd+bwd time) --\n");
  std::printf("%-44s %10.1f ms\n", "Caffe baseline", Caffe.total() * 1e3);
  std::printf("%-44s %10.1f ms\n", "Latte, no tiling/fusion",
              LatteBase.total() * 1e3);
  std::printf("%-44s %10.1f ms\n", "Latte, tiling+fusion",
              LatteFull.total() * 1e3);
  std::printf("%-44s %10.1f ms\n", "Latte, tiling+fusion, scalar kernels",
              LatteNoVec.total() * 1e3);
  std::printf("\nvectorization gain: %.2fx; cross-layer gain: %.2fx\n",
              LatteNoVec.total() / LatteFull.total(),
              LatteBase.total() / LatteFull.total());

  std::printf("\n-- interpreter vs in-process JIT (full stack, fwd+bwd) --\n");
  if (JitActive) {
    std::printf("%-44s %10.1f ms\n", "Latte full, interpreted dispatch",
                LatteFull.total() * 1e3);
    std::printf("%-44s %10.1f ms\n", "Latte full, JIT dispatch",
                LatteJit.total() * 1e3);
    std::printf("JIT dispatch gain: %.2fx (shared-object compile excluded; "
                "cached across runs)\n",
                LatteFull.total() / LatteJit.total());
  } else {
    std::printf("JIT unavailable (fell back to the interpreter); timings "
                "omitted\n");
  }

  std::printf("\n-- memory: liveness-planned arena vs eager allocation --\n");
  printMemoryRow("Latte, no tiling/fusion", LatteBase);
  printMemoryRow("Latte, tiling+fusion", LatteFull);
  printMemoryRow("Latte, tiling+fusion + slice rotation", LatteRotate);
  std::printf("(fusion keeps a chain's buffers in one batch loop, so its "
              "pass-local\n grads stay live together — less folding than "
              "the unfused point.\n slice rotation folds *inside* the "
              "chain: buffers the sub-unit effect\n analysis proves "
              "per-item private shrink to modular slice pools; needs\n "
              "batch > 2 to have anything to fold.)\n");

  if (BO.profiling()) {
    BenchReport R("fig13", BO);
    R.addRow("caffe", Caffe);
    R.addRow("latte_no_crosslayer", LatteBase);
    R.addRow("latte_full", LatteFull);
    R.addRow("latte_full_scalar", LatteNoVec);
    // The folded-vs-unfolded fused arena pair: latte_full's arena_bytes
    // is the unrotated fused plan, this row's is the slice-rotated one.
    // Both are deterministic, so compare gates them at 1.05x.
    R.addRow("latte_full_rotate", LatteRotate);
    // Informational row (bench/compare treats rows present on only one
    // side as non-gating): absent when the JIT could not engage, so a CI
    // runner without a working system compiler never fails the gate.
    if (JitActive)
      R.addRow("latte_full_jit", LatteJit);
    // Per-pass compile timing over the full optimization pipeline.
    core::Net Net(BO.Batch);
    models::buildLatte(Net, Spec, /*WithLoss=*/true);
    R.addCompileStages(compiler::compileStaged(Net, Full));
    if (!R.finish())
      return 1;
  }
  return 0;
}
