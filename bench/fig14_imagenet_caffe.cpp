//===- bench/fig14_imagenet_caffe.cpp - Figure 14 --------------*- C++ -*-===//
///
/// Figure 14: Latte's speedup over Caffe on the three ImageNet models.
/// The paper reports 5-6x on AlexNet and VGG and 3.2x on OverFeat (on 36
/// cores; OverFeat benefits least because more of its time sits in
/// fully-connected GEMMs that both systems execute with the same library
/// kernel — the same effect is visible here).
///
/// `--json BENCH_fig14.json` emits the machine-readable summary for
/// bench/compare; `--trace` a Chrome trace. `--scale/--batch/--reps`
/// shrink the run.
///
//===----------------------------------------------------------------------===//

#include "harness.h"

using namespace latte;
using namespace latte::bench;

int main(int argc, char **argv) {
  BenchOptions BO = parseBenchArgs(argc, argv, /*DefScale=*/0.5,
                                   /*DefBatch=*/1, /*DefReps=*/2);
  struct Row {
    models::ModelSpec Spec;
    const char *Key; ///< stable row-label stem for the JSON output
    const char *Paper;
  };
  Row Rows[] = {
      {models::alexNet(BO.Scale), "alexnet", "5.4x (36c)"},
      {models::overfeat(BO.Scale), "overfeat", "3.2x (36c)"},
      {models::vggA(BO.Scale), "vgg_a", "5.8x (36c)"},
  };

  printHeader("Figure 14: speedup of Latte over Caffe on ImageNet models",
              "spatial scale " + std::to_string(BO.Scale) + ", batch " +
                  std::to_string(BO.Batch) + ", forward+backward");
  BenchReport R("fig14", BO);
  for (Row &Item : Rows) {
    PassTimes Caffe =
        timeBaseline(Item.Spec, BO.Batch, /*Naive=*/false, BO.Reps);
    PassTimes Latte = timeLatte(Item.Spec, BO.Batch, {}, BO.Reps);
    printSpeedupRow(Item.Spec.Name, Caffe.total(), Latte.total(),
                    Item.Paper);
    R.addRow(std::string(Item.Key) + "_caffe", Caffe);
    R.addRow(std::string(Item.Key) + "_latte", Latte);
  }
  if (BO.profiling() && !R.finish())
    return 1;
  return 0;
}
