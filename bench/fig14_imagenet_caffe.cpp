//===- bench/fig14_imagenet_caffe.cpp - Figure 14 --------------*- C++ -*-===//
///
/// Figure 14: Latte's speedup over Caffe on the three ImageNet models.
/// The paper reports 5-6x on AlexNet and VGG and 3.2x on OverFeat (on 36
/// cores; OverFeat benefits least because more of its time sits in
/// fully-connected GEMMs that both systems execute with the same library
/// kernel — the same effect is visible here).
///
//===----------------------------------------------------------------------===//

#include "harness.h"

using namespace latte;
using namespace latte::bench;

int main() {
  const double Scale = 0.5;
  const int64_t Batch = 1;
  struct Row {
    models::ModelSpec Spec;
    const char *Paper;
  };
  Row Rows[] = {
      {models::alexNet(Scale), "5.4x (36c)"},
      {models::overfeat(Scale), "3.2x (36c)"},
      {models::vggA(Scale), "5.8x (36c)"},
  };

  printHeader("Figure 14: speedup of Latte over Caffe on ImageNet models",
              "spatial scale " + std::to_string(Scale) + ", batch " +
                  std::to_string(Batch) + ", forward+backward");
  for (Row &R : Rows) {
    PassTimes Caffe = timeBaseline(R.Spec, Batch, /*Naive=*/false, 2);
    PassTimes Latte = timeLatte(R.Spec, Batch, {}, 2);
    printSpeedupRow(R.Spec.Name, Caffe.total(), Latte.total(), R.Paper);
  }
  return 0;
}
