//===- bench/layer_ops.cpp - Layer-level microbenchmarks ------*- C++ -*-===//
///
/// google-benchmark comparison of one convolution layer across the three
/// systems (Latte compiled program, Caffe baseline, Mocha baseline) and of
/// Latte's pooling/activation kernels — the per-layer view underneath the
/// whole-model figures.
///
//===----------------------------------------------------------------------===//

#include "baselines/mocha/mocha.h"
#include "compiler/compiler.h"
#include "core/layers/layers.h"
#include "engine/executor.h"
#include "kernels/pooling.h"
#include "support/rng.h"

#include <benchmark/benchmark.h>

using namespace latte;

namespace {

constexpr int64_t Cin = 16, H = 32, F = 32, Kk = 3;

void BM_ConvForwardLatte(benchmark::State &State) {
  core::Net Net(1);
  auto *Data = layers::DataLayer(Net, "data", Shape{Cin, H, H});
  layers::ConvolutionLayer(Net, "conv", Data, F, Kk, 1, 1);
  engine::Executor Ex(compiler::compile(Net));
  Ex.initParams(1);
  Tensor In(Shape{1, Cin, H, H});
  Rng R(3);
  R.fillGaussian(In, 0.0f, 1.0f);
  Ex.setInput(In);
  for (auto _ : State)
    Ex.forward();
}

void BM_ConvForwardCaffe(benchmark::State &State) {
  caffe::CaffeNet Net(1);
  Net.setInputShape(Shape{Cin, H, H});
  Net.addLayer(
      std::make_unique<caffe::ConvolutionLayer>("conv", F, Kk, 1, 1));
  Net.setup(1);
  Rng R(3);
  R.fillGaussian(Net.inputBlob().Data, 0.0f, 1.0f);
  for (auto _ : State)
    Net.forward();
}

void BM_ConvForwardMocha(benchmark::State &State) {
  caffe::CaffeNet Net(1);
  Net.setInputShape(Shape{Cin, H, H});
  Net.addLayer(std::make_unique<mocha::NaiveConvolutionLayer>("conv", F, Kk,
                                                              1, 1));
  Net.setup(1);
  Rng R(3);
  R.fillGaussian(Net.inputBlob().Data, 0.0f, 1.0f);
  for (auto _ : State)
    Net.forward();
}

void BM_MaxPoolKernel(benchmark::State &State) {
  kernels::ConvGeometry G{64, 56, 56, 2, 2, 2, 2, 0, 0};
  Tensor In(Shape{64, 56, 56}), Out(Shape{64, 28, 28});
  std::vector<int32_t> Mask(static_cast<size_t>(Out.numElements()));
  Rng R(5);
  R.fillGaussian(In, 0.0f, 1.0f);
  for (auto _ : State)
    kernels::maxPoolFwd(In.data(), G, Out.data(), Mask.data());
}

} // namespace

BENCHMARK(BM_ConvForwardLatte)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ConvForwardCaffe)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ConvForwardMocha)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MaxPoolKernel)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
