//===- bench/fig19_weak_scaling.cpp - Figure 19 ----------------*- C++ -*-===//
///
/// Figure 19: weak scaling on the commodity cluster — AlexNet with a
/// fixed batch of 64 per node, 1-128 nodes over InfiniBand. The paper
/// observes near-linear scaling with communication cost roughly constant
/// in node count, matching Deep Image's asynchronous gradient summation.
/// Setup mirrors fig18 (measured compute, simulated network).
///
//===----------------------------------------------------------------------===//

#include "harness.h"

#include "runtime/cluster_sim.h"

using namespace latte;
using namespace latte::bench;
using namespace latte::runtime;

int main() {
  const double Scale = 0.5;
  const int64_t MeasureBatch = 4;
  const int64_t PerNode = 64;
  models::ModelSpec Spec = models::alexNet(Scale);

  printHeader("Figure 19: weak scaling, batch 64 per node (AlexNet)",
              Spec.Name + " at scale " + std::to_string(Scale) +
                  "; compute measured at batch " +
                  std::to_string(MeasureBatch) + ", scaled to 64/node");

  PassTimes T = timeLatte(Spec, MeasureBatch, {}, 2);
  double ScaleUp = static_cast<double>(PerNode) / MeasureBatch;
  std::vector<LayerProfile> Profiles = estimateLayerProfiles(
      Spec, PerNode, T.FwdSec * ScaleUp, T.BwdSec * ScaleUp);

  ClusterConfig C;
  C.Network.LatencySec = 20e-6;          // InfiniBand-class
  C.Network.BandwidthBytesPerSec = 5e9;
  double T1 = 0;
  std::printf("%6s %14s %14s %12s %16s\n", "nodes", "iter (ms)",
              "images/s", "scaling", "exposed comm (ms)");
  for (int Nodes : {1, 2, 4, 8, 16, 32, 64, 128}) {
    C.Nodes = Nodes;
    ClusterResult R = simulateIteration(Profiles, C, PerNode, PerNode);
    double Tput = Nodes * PerNode / R.IterSeconds;
    if (Nodes == 1)
      T1 = Tput;
    std::printf("%6d %14.1f %14.1f %11.2fx %16.2f\n", Nodes,
                R.IterSeconds * 1e3, Tput, Tput / T1,
                R.ExposedCommSeconds * 1e3);
  }
  std::printf("paper: near-linear scaling; communication cost constant in "
              "node count\n");
  return 0;
}
