//===- bench/fig16_mocha.cpp - Figure 16 -----------------------*- C++ -*-===//
///
/// Figure 16: Latte's speedup over Mocha.jl, the high-level Julia
/// framework. The paper reports 37.9x (AlexNet), 16.2x (OverFeat), and
/// 41x (VGG), attributing the gap to Mocha's lack of parallelization and
/// tiling and to unoptimized non-MKL code paths. Our Mocha baseline
/// reproduces those properties (naive direct convolution, scalar
/// unblocked GEMM, out-of-place activations), so the order-of-magnitude
/// shape survives even single-threaded.
///
//===----------------------------------------------------------------------===//

#include "harness.h"

using namespace latte;
using namespace latte::bench;

int main() {
  const double Scale = 0.25;
  const int64_t Batch = 1;
  struct Row {
    models::ModelSpec Spec;
    const char *Paper;
  };
  Row Rows[] = {
      {models::alexNet(Scale), "37.9x (36c)"},
      {models::overfeat(Scale), "16.2x (36c)"},
      {models::vggA(Scale), "41x (36c)"},
  };
  printHeader("Figure 16: speedup of Latte over Mocha on ImageNet models",
              "spatial scale " + std::to_string(Scale) + ", batch " +
                  std::to_string(Batch) + ", forward+backward");
  for (Row &R : Rows) {
    PassTimes Mocha = timeBaseline(R.Spec, Batch, /*Naive=*/true, 1);
    PassTimes Latte = timeLatte(R.Spec, Batch, {}, 2);
    printSpeedupRow(R.Spec.Name, Mocha.total(), Latte.total(), R.Paper);
  }
  return 0;
}
