//===- bench/compare.cpp - BENCH json regression gate ---------*- C++ -*-===//
///
/// CLI over support/bench_compare.h: diffs two `BENCH_<fig>.json` files
/// and exits nonzero when any timing row regressed past the threshold.
/// CI's bench-smoke job runs this against the checked-in baseline
/// (bench/baselines/) with a generous threshold so only gross regressions
/// gate merges.
///
///   bench/compare old.json new.json [--threshold 1.5] [--markdown]
///                 [--rows label1,label2] [--metrics m1,m2]
///
/// `--markdown` prints a GitHub-flavored table instead of the plain
/// report — CI appends it to $GITHUB_STEP_SUMMARY. `--rows` restricts the
/// comparison to the named row labels and `--metrics` to the named metric
/// columns: the serve-smoke job hard-gates the `serve_throughput` speedup
/// row and the `serve_p50` row's machine-normalized `latency_norm` at
/// tight thresholds, then reruns without the filters (informationally)
/// for the summary table.
///
/// Exit codes: 0 = within threshold, 1 = regression, 2 = usage/parse error.
///
//===----------------------------------------------------------------------===//

#include "support/bench_compare.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace latte;

int main(int argc, char **argv) {
  std::string OldPath, NewPath;
  double Threshold = 1.5;
  bool Markdown = false;
  std::vector<std::string> Rows, Metrics;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--threshold") == 0 && I + 1 < argc) {
      Threshold = std::atof(argv[++I]);
    } else if (std::strcmp(argv[I], "--markdown") == 0) {
      Markdown = true;
    } else if ((std::strcmp(argv[I], "--rows") == 0 ||
                std::strcmp(argv[I], "--metrics") == 0) &&
               I + 1 < argc) {
      std::vector<std::string> &Dst =
          std::strcmp(argv[I], "--rows") == 0 ? Rows : Metrics;
      std::string List = argv[++I];
      size_t Pos = 0;
      while (Pos <= List.size()) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        if (Comma > Pos)
          Dst.push_back(List.substr(Pos, Comma - Pos));
        Pos = Comma + 1;
      }
    } else if (std::strcmp(argv[I], "--help") == 0) {
      std::printf("usage: compare old.json new.json [--threshold R] "
                  "[--markdown] [--rows a,b] [--metrics m,n]\n");
      return 0;
    } else if (OldPath.empty()) {
      OldPath = argv[I];
    } else if (NewPath.empty()) {
      NewPath = argv[I];
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", argv[I]);
      return 2;
    }
  }
  if (OldPath.empty() || NewPath.empty() || Threshold <= 1.0) {
    std::fprintf(stderr,
                 "usage: compare old.json new.json [--threshold R>1]\n");
    return 2;
  }

  std::string Err;
  json::Value Old = json::parseFile(OldPath, &Err);
  if (Old.isNull()) {
    std::fprintf(stderr, "error reading '%s': %s\n", OldPath.c_str(),
                 Err.c_str());
    return 2;
  }
  json::Value New = json::parseFile(NewPath, &Err);
  if (New.isNull()) {
    std::fprintf(stderr, "error reading '%s': %s\n", NewPath.c_str(),
                 Err.c_str());
    return 2;
  }

  bench::CompareResult R = bench::compareBenchJson(
      Old, New, Threshold, /*MinDeltaSec=*/1e-4,
      Rows.empty() ? nullptr : &Rows,
      Metrics.empty() ? nullptr : &Metrics);
  std::fputs(Markdown ? bench::formatCompareMarkdown(R, Threshold).c_str()
                      : bench::formatCompareReport(R, Threshold).c_str(),
             stdout);
  if (R.Compared.empty()) {
    std::fprintf(stderr, "no comparable metrics found\n");
    return 2;
  }
  return R.ok() ? 0 : 1;
}
