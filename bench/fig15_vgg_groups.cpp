//===- bench/fig15_vgg_groups.cpp - Figure 15 ------------------*- C++ -*-===//
///
/// Figure 15: speedup breakdown over the first four Conv+ReLU+Pool groups
/// of VGG. The paper's shape: early groups (large spatial extents) benefit
/// most from tiling+fusion; group 4 gains least because its two stacked
/// convolutions cannot fuse (dependence along the channel dimension) and
/// its data largely fits in cache. The harness prints measured speedups
/// per group next to that qualitative expectation, plus each group's
/// fusion report so the compiler's behavior is visible.
///
//===----------------------------------------------------------------------===//

#include "harness.h"

#include "support/string_utils.h"

using namespace latte;
using namespace latte::bench;

int main() {
  const double Scale = 0.5;
  const int64_t Batch = 2;
  printHeader("Figure 15: per-group speedup, VGG groups 1-4",
              "spatial scale " + std::to_string(Scale) + ", batch " +
                  std::to_string(Batch) + ", forward+backward");

  const char *PaperShape[] = {"largest gain", "large gain", "moderate gain",
                              "smallest gain (two convs, no fusion)"};
  for (int G = 1; G <= 4; ++G) {
    models::ModelSpec Spec = models::vggGroup(G, Scale);
    // Show what fused in this group.
    core::Net Net(Batch);
    models::buildLatte(Net, Spec, true);
    compiler::Program P = compiler::compile(Net);
    std::string Fused = "none";
    if (!P.Report.FusionGroups.empty())
      Fused = join(P.Report.FusionGroups[0], "+");

    PassTimes Caffe = timeBaseline(Spec, Batch, /*Naive=*/false, 2);
    PassTimes Latte = timeLatte(Spec, Batch, {}, 2);
    printSpeedupRow("group " + std::to_string(G) + " (" +
                        Spec.InputDims.str() + ")",
                    Caffe.total(), Latte.total(), PaperShape[G - 1]);
    std::printf("%-28s fused: %s\n", "", Fused.c_str());
    printMemoryRow("  memory (planned vs eager)", Latte);
  }
  return 0;
}
