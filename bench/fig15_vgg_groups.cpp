//===- bench/fig15_vgg_groups.cpp - Figure 15 ------------------*- C++ -*-===//
///
/// Figure 15: speedup breakdown over the first four Conv+ReLU+Pool groups
/// of VGG. The paper's shape: early groups (large spatial extents) benefit
/// most from tiling+fusion; group 4 gains least because its two stacked
/// convolutions cannot fuse (dependence along the channel dimension) and
/// its data largely fits in cache. The harness prints measured speedups
/// per group next to that qualitative expectation, plus each group's
/// fusion report so the compiler's behavior is visible.
///
/// Each group's memory row also shows the recompute trade: with
/// CompileOptions::Recompute (the default) the im2col gather buffers are
/// re-gathered in backward instead of retained across the
/// forward/backward boundary, so the multi-conv groups' planned arenas
/// shrink at the cost of replaying the gathers.
///
/// `--json BENCH_fig15.json` emits the machine-readable summary (timing
/// rows with memory + recompute columns, per-pass compile times, spans,
/// counters) that bench/compare diffs in CI; `--trace trace.json` emits a
/// Chrome trace. `--scale/--batch/--reps` shrink the run for smoke tests.
///
//===----------------------------------------------------------------------===//

#include "harness.h"

#include "support/string_utils.h"

using namespace latte;
using namespace latte::bench;
using namespace latte::compiler;

int main(int argc, char **argv) {
  BenchOptions BO = parseBenchArgs(argc, argv, /*DefScale=*/0.5,
                                   /*DefBatch=*/2, /*DefReps=*/2);
  printHeader("Figure 15: per-group speedup, VGG groups 1-4",
              "spatial scale " + std::to_string(BO.Scale) + ", batch " +
                  std::to_string(BO.Batch) + ", forward+backward");

  BenchReport R("fig15", BO);
  const char *PaperShape[] = {"largest gain", "large gain", "moderate gain",
                              "smallest gain (two convs, no fusion)"};
  for (int G = 1; G <= 4; ++G) {
    models::ModelSpec Spec = models::vggGroup(G, BO.Scale);
    // Show what fused in this group.
    core::Net Net(BO.Batch);
    models::buildLatte(Net, Spec, true);
    Program P = compile(Net);
    std::string Fused = "none";
    if (!P.Report.FusionGroups.empty())
      Fused = join(P.Report.FusionGroups[0], "+");

    PassTimes Caffe = timeBaseline(Spec, BO.Batch, /*Naive=*/false, BO.Reps);
    PassTimes Latte = timeLatte(Spec, BO.Batch, {}, BO.Reps);
    CompileOptions NoRecompute;
    NoRecompute.Recompute = false;
    PassTimes LatteKeep = timeLatte(Spec, BO.Batch, NoRecompute, BO.Reps);

    std::string Group = "group " + std::to_string(G);
    printSpeedupRow(Group + " (" + Spec.InputDims.str() + ")", Caffe.total(),
                    Latte.total(), PaperShape[G - 1]);
    std::printf("%-28s fused: %s\n", "", Fused.c_str());
    printMemoryRow("  memory, recompute on (default)", Latte);
    printMemoryRow("  memory, recompute off", LatteKeep);

    R.addRow("group" + std::to_string(G) + "_caffe", Caffe);
    R.addRow("group" + std::to_string(G) + "_latte", Latte);
    R.addRow("group" + std::to_string(G) + "_latte_retain", LatteKeep);
  }

  if (BO.profiling()) {
    // Per-pass compile timing over the full pipeline on the deepest group.
    core::Net Net(BO.Batch);
    models::buildLatte(Net, models::vggGroup(4, BO.Scale), /*WithLoss=*/true);
    R.addCompileStages(compileStaged(Net, {}));
    if (!R.finish())
      return 1;
  }
  return 0;
}
