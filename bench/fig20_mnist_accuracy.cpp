//===- bench/fig20_mnist_accuracy.cpp - Figure 20 --------------*- C++ -*-===//
///
/// Figure 20: MNIST Top-1 accuracy with lossy (unsynchronized) gradient
/// accumulation versus sequential training. The paper reports identical
/// 99.20% accuracy for both modes, concluding the parallelization noise
/// does not degrade training (Project Adam's observation). Real MNIST is
/// unavailable offline; the synthetic MNIST substitute (see DESIGN.md)
/// provides an equivalent learnable task. Both configurations train the
/// same convolutional network for the same number of steps.
///
//===----------------------------------------------------------------------===//

#include "compiler/compiler.h"
#include "data/datasets.h"
#include "models/models.h"
#include "runtime/data_parallel.h"
#include "solvers/solvers.h"

#include <cstdio>

using namespace latte;
using namespace latte::runtime;
using namespace latte::solvers;

namespace {

double trainAndEvaluate(bool Lossy, int Workers, const data::Dataset &Ds) {
  const int64_t Batch = 16;
  const int Iters = 700;
  NetBuilder Builder = [&](core::Net &Net) {
    models::ModelSpec Spec;
    Spec.Name = "MnistNet";
    Spec.InputDims = Ds.itemDims();
    Spec.NumClasses = 10;
    auto Layer = [](models::LayerSpec::Kind K, const char *Name,
                    int64_t Filters, int64_t Kernel, int64_t Stride) {
      models::LayerSpec L;
      L.K = K;
      L.Name = Name;
      L.Filters = Filters;
      L.Kernel = Kernel;
      L.Stride = Stride;
      return L;
    };
    Spec.Layers = {
        Layer(models::LayerSpec::Kind::Conv, "conv1", 8, 5, 1),
        Layer(models::LayerSpec::Kind::Relu, "relu1", 0, 0, 1),
        Layer(models::LayerSpec::Kind::MaxPool, "pool1", 0, 2, 2),
        Layer(models::LayerSpec::Kind::Fc, "fc1", 64, 0, 1),
        Layer(models::LayerSpec::Kind::Relu, "relu2", 0, 0, 1),
    };
    models::buildLatte(Net, Spec, /*WithLoss=*/true);
  };

  DataParallelOptions O;
  O.NumWorkers = Workers;
  O.LossyGradients = Lossy;
  DataParallelTrainer T(Builder, Batch, O);

  SolverParameters P;
  P.Lr = LRPolicy::inv(0.02, 0.001, 0.75);
  P.Momentum = MomPolicy::fixed(0.9);
  SgdSolver S(P);

  // Train on the first half of the dataset; evaluate on the held-out
  // second half (fresh noise and shifts the model never saw).
  const int64_t TrainItems = Ds.size() / 2;
  Tensor Data(Ds.itemDims().withPrefix(Batch));
  Tensor Labels(Shape{Batch});
  int64_t ItemSize = Ds.itemDims().numElements();
  for (int Iter = 0; Iter < Iters; ++Iter) {
    for (int64_t I = 0; I < Batch; ++I)
      Labels.at(I) = static_cast<float>(Ds.fillItem(
          (Iter * Batch + I) % TrainItems, Data.data() + I * ItemSize));
    T.trainStep(Data, Labels, S, Iter);
  }
  // Evaluation runs on one worker replica, at its per-worker batch size.
  engine::Executor &Ex = T.worker(0);
  int64_t WorkerBatch = Ex.program().BatchSize;
  Tensor EvalData(Ds.itemDims().withPrefix(WorkerBatch));
  Tensor EvalLabels(Shape{WorkerBatch});
  int64_t EvalBatches = TrainItems / WorkerBatch;
  double Sum = 0;
  for (int64_t B = 0; B < EvalBatches; ++B) {
    for (int64_t I = 0; I < WorkerBatch; ++I)
      EvalLabels.at(I) = static_cast<float>(
          Ds.fillItem(TrainItems + B * WorkerBatch + I,
                      EvalData.data() + I * ItemSize));
    Ex.setInput(EvalData);
    Ex.setLabels(EvalLabels);
    Ex.forward();
    Sum += Ex.accuracy();
  }
  return Sum / static_cast<double>(EvalBatches);
}

} // namespace

int main() {
  data::SyntheticMnist Ds(1024, 0xfab, 10, 16, 0.4f, 2);
  std::printf("=========================================================\n");
  std::printf("Figure 20: Top-1 accuracy, lossy vs sequential gradients\n");
  std::printf("(synthetic MNIST substitute; held-out eval; 700 steps)\n");
  std::printf("=========================================================\n");
  std::printf("%-34s %10s   %s\n", "configuration", "accuracy", "paper");
  double Seq = trainAndEvaluate(/*Lossy=*/false, /*Workers=*/1, Ds);
  std::printf("%-34s %9.2f%%   %s\n", "Latte (sequential)", 100 * Seq,
              "99.20%");
  double Sync = trainAndEvaluate(/*Lossy=*/false, /*Workers=*/4, Ds);
  std::printf("%-34s %9.2f%%   %s\n",
              "Latte (4 workers, synchronized)", 100 * Sync, "-");
  double Lossy = trainAndEvaluate(/*Lossy=*/true, /*Workers=*/4, Ds);
  std::printf("%-34s %9.2f%%   %s\n", "Latte (4 workers, lossy)",
              100 * Lossy, "99.20%");
  std::printf("\npaper's conclusion reproduced when lossy ~= sequential "
              "(delta here: %.2f points)\n",
              100.0 * (Seq - Lossy));
  return 0;
}
