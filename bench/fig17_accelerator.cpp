//===- bench/fig17_accelerator.cpp - Figure 17 -----------------*- C++ -*-===//
///
/// Figure 17: throughput (images/second) as Xeon Phi coprocessors are
/// added to the host. The paper observes roughly +50% throughput per card
/// (each card delivering about half the host's rate, limited by gradient
/// return over PCIe). The host rate here is *measured* on the real engine
/// (AlexNet forward+backward); the cards are simulated device models
/// driven by the real runtime logic — the §6.1 chunk-size linear search
/// and double buffering (see DESIGN.md on this substitution).
///
//===----------------------------------------------------------------------===//

#include "harness.h"

#include "runtime/accelerator.h"

using namespace latte;
using namespace latte::bench;
using namespace latte::runtime;

int main() {
  const double Scale = 0.5;
  const int64_t Batch = 8;
  models::ModelSpec Spec = models::alexNet(Scale);
  printHeader("Figure 17: throughput with Xeon Phi coprocessors "
              "(simulated devices, measured host)",
              Spec.Name + " at scale " + std::to_string(Scale) +
                  ", fwd+bwd, batch " + std::to_string(Batch));

  PassTimes Host = timeLatte(Spec, Batch, {}, 2);
  double HostPerItem = Host.total() / Batch;
  std::printf("measured host rate: %.2f images/s (%.1f ms/image)\n\n",
              1.0 / HostPerItem, HostPerItem * 1e3);

  int64_t GradBytes = models::countParams(Spec) * 4;
  const int64_t SimBatch = 128;
  double Base = 0;
  for (int Cards = 0; Cards <= 2; ++Cards) {
    HeterogeneousConfig C;
    C.HostSecondsPerItem = HostPerItem;
    C.BytesPerItem = Spec.InputDims.numElements() * 4;
    C.GradBytes = GradBytes;
    for (int I = 0; I < Cards; ++I)
      C.Devices.push_back(DeviceModel{0.55, 6e9, 50e-6});
    HeterogeneousScheduler S(C);
    ThroughputResult R = S.throughput(SimBatch);
    if (Cards == 0)
      Base = R.ItemsPerSecond;
    std::printf("Xeon + %d Phi: %8.2f images/s  (%.2fx of host-only; "
                "chunks:", Cards, R.ItemsPerSecond,
                R.ItemsPerSecond / Base);
    std::printf(" host=%lld", static_cast<long long>(R.Chosen.HostItems));
    for (int64_t D : R.Chosen.DeviceChunks)
      std::printf(" dev=%lld", static_cast<long long>(D));
    std::printf(")   paper: ~+50%% per card\n");
  }
  return 0;
}
