//===- bench/harness.h - Shared figure-harness helpers --------*- C++ -*-===//
///
/// \file
/// Helpers shared by the per-figure benchmark binaries: building and
/// timing the same ModelSpec on Latte, the Caffe baseline, and the Mocha
/// baseline, plus row printing with the paper's published values alongside
/// the measured ones.
///
/// NOTE ON SCALE: the paper's numbers come from a 36-core Xeon E5-2699 v3;
/// this harness runs wherever it is built (possibly one core) and at a
/// reduced spatial scale (printed in each header). Speedup *ratios*
/// attributable to algorithmic structure (fusion, tiling, kernel choice,
/// naive vs optimized baselines) survive; the parallelization factor of
/// the paper scales with the available cores. EXPERIMENTS.md discusses
/// each figure.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_BENCH_HARNESS_H
#define LATTE_BENCH_HARNESS_H

#include "baselines/mocha/mocha.h"
#include "compiler/compiler.h"
#include "engine/executor.h"
#include "models/models.h"
#include "support/timer.h"

#include <cstdio>
#include <memory>
#include <string>

namespace latte {
namespace bench {

struct PassTimes {
  double FwdSec = 0.0;
  double BwdSec = 0.0;
  double total() const { return FwdSec + BwdSec; }
};

inline void fillRandom(Tensor &T, uint64_t Seed) {
  Rng R(Seed);
  R.fillGaussian(T, 0.0f, 1.0f);
}

/// Times Latte forward/backward for one batch (min over \p Reps).
inline PassTimes timeLatte(const models::ModelSpec &Spec, int64_t Batch,
                           const compiler::CompileOptions &Opts,
                           int Reps = 3) {
  core::Net Net(Batch);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  engine::ExecOptions EO;
  EO.VectorKernels = Opts.VectorKernels;
  EO.Parallel = Opts.Parallelize;
  engine::Executor Ex(compiler::compile(Net, Opts), EO);
  Ex.initParams(1);
  Tensor In(Spec.InputDims.withPrefix(Batch));
  fillRandom(In, 7);
  Ex.setInput(In);
  Tensor Labels(Shape{Batch, 1});
  for (int64_t I = 0; I < Batch; ++I)
    Labels.at(I) = static_cast<float>(I % Spec.NumClasses);
  Ex.setLabels(Labels);

  PassTimes T;
  T.FwdSec = bestWallTime([&] { Ex.forward(); }, Reps);
  T.BwdSec = bestWallTime([&] { Ex.backward(); }, Reps);
  return T;
}

/// Times one of the baselines (Caffe when \p Naive is false, Mocha
/// otherwise).
inline PassTimes timeBaseline(const models::ModelSpec &Spec, int64_t Batch,
                              bool Naive, int Reps = 3) {
  caffe::CaffeNet Net(Batch);
  if (Naive)
    models::buildMocha(Net, Spec, /*WithLoss=*/true);
  else
    models::buildCaffe(Net, Spec, /*WithLoss=*/true);
  Net.setup(1);
  fillRandom(Net.inputBlob().Data, 7);
  for (int64_t I = 0; I < Batch; ++I)
    Net.labelBlob().Data.at(I) = static_cast<float>(I % Spec.NumClasses);

  PassTimes T;
  T.FwdSec = bestWallTime([&] { Net.forward(); }, Reps);
  T.BwdSec = bestWallTime([&] { Net.backward(); }, Reps);
  return T;
}

inline void printHeader(const std::string &Title,
                        const std::string &Workload) {
  std::printf("==========================================================\n");
  std::printf("%s\n", Title.c_str());
  std::printf("workload: %s\n", Workload.c_str());
  std::printf("==========================================================\n");
}

inline void printSpeedupRow(const std::string &Label, double BaselineSec,
                            double LatteSec, const std::string &PaperNote) {
  std::printf("%-28s %10.1f ms %10.1f ms  speedup %5.2fx   paper: %s\n",
              Label.c_str(), BaselineSec * 1e3, LatteSec * 1e3,
              BaselineSec / LatteSec, PaperNote.c_str());
}

} // namespace bench
} // namespace latte

#endif // LATTE_BENCH_HARNESS_H
