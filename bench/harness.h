//===- bench/harness.h - Shared figure-harness helpers --------*- C++ -*-===//
///
/// \file
/// Helpers shared by the per-figure benchmark binaries: building and
/// timing the same ModelSpec on Latte, the Caffe baseline, and the Mocha
/// baseline, plus row printing with the paper's published values alongside
/// the measured ones.
///
/// NOTE ON SCALE: the paper's numbers come from a 36-core Xeon E5-2699 v3;
/// this harness runs wherever it is built (possibly one core) and at a
/// reduced spatial scale (printed in each header). Speedup *ratios*
/// attributable to algorithmic structure (fusion, tiling, kernel choice,
/// naive vs optimized baselines) survive; the parallelization factor of
/// the paper scales with the available cores. EXPERIMENTS.md discusses
/// each figure.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_BENCH_HARNESS_H
#define LATTE_BENCH_HARNESS_H

#include "baselines/mocha/mocha.h"
#include "compiler/compiler.h"
#include "engine/executor.h"
#include "models/models.h"
#include "support/json.h"
#include "support/profile.h"
#include "support/timer.h"
#include "support/trace_json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

namespace latte {
namespace bench {

struct PassTimes {
  double FwdSec = 0.0;
  double BwdSec = 0.0;
  /// Memory footprint of the run (0 = not measured, e.g. the baselines):
  /// ArenaBytes is the planned arena size actually allocated, EagerBytes
  /// what one-buffer-per-root eager allocation would have used.
  int64_t ArenaBytes = 0;
  int64_t EagerBytes = 0;
  /// The recompute trade (0 when the pass found no candidates): extra ops
  /// replayed in backward vs bytes no longer retained across the
  /// forward/backward boundary.
  int64_t RecomputeFlops = 0;
  int64_t RetainedBytesSaved = 0;
  double total() const { return FwdSec + BwdSec; }
  double memSavedPct() const {
    return EagerBytes > 0
               ? 100.0 * (1.0 - double(ArenaBytes) / double(EagerBytes))
               : 0.0;
  }
};

/// Common CLI surface of the figure binaries:
///
///   fig13_microbench [--scale S] [--batch N] [--reps N]
///                    [--json BENCH_fig13.json] [--trace trace.json]
///
/// `--json` emits the machine-readable BENCH summary (rows, per-pass
/// compile times, per-task execution spans, counters, git sha, host info)
/// consumed by bench/compare and CI; `--trace` emits a Chrome trace_event
/// file loadable in chrome://tracing or https://ui.perfetto.dev. Either
/// flag turns the global profiler on.
struct BenchOptions {
  double Scale = 1.0;
  int64_t Batch = 1;
  int Reps = 3;
  std::string JsonPath;
  std::string TracePath;

  bool profiling() const { return !JsonPath.empty() || !TracePath.empty(); }
};

inline BenchOptions parseBenchArgs(int Argc, char **Argv, double DefScale,
                                   int64_t DefBatch, int DefReps = 3) {
  BenchOptions O;
  O.Scale = DefScale;
  O.Batch = DefBatch;
  O.Reps = DefReps;
  auto NeedValue = [&](int I) {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "missing value for %s\n", Argv[I]);
      std::exit(2);
    }
    return Argv[I + 1];
  };
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--scale") == 0)
      O.Scale = std::atof(NeedValue(I++));
    else if (std::strcmp(Argv[I], "--batch") == 0)
      O.Batch = std::atoll(NeedValue(I++));
    else if (std::strcmp(Argv[I], "--reps") == 0)
      O.Reps = std::atoi(NeedValue(I++));
    else if (std::strcmp(Argv[I], "--json") == 0)
      O.JsonPath = NeedValue(I++);
    else if (std::strcmp(Argv[I], "--trace") == 0)
      O.TracePath = NeedValue(I++);
    else if (std::strcmp(Argv[I], "--help") == 0) {
      std::printf("usage: %s [--scale S] [--batch N] [--reps N] "
                  "[--json out.json] [--trace out.json]\n",
                  Argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument '%s' (see --help)\n", Argv[I]);
      std::exit(2);
    }
  }
  if (O.Scale <= 0 || O.Batch <= 0 || O.Reps <= 0) {
    std::fprintf(stderr, "--scale/--batch/--reps must be positive\n");
    std::exit(2);
  }
  if (O.profiling())
    prof::Profiler::get().setEnabled(true);
  return O;
}

/// Git revision baked in at configure time (CMake passes LATTE_GIT_SHA).
inline std::string gitSha() {
#ifdef LATTE_GIT_SHA
  return LATTE_GIT_SHA;
#else
  if (const char *Env = std::getenv("LATTE_GIT_SHA"))
    return Env;
  return "unknown";
#endif
}

inline json::Value hostInfoJson() {
  json::Value Host = json::Value::object();
  Host.set("cpu_count",
           static_cast<int64_t>(std::thread::hardware_concurrency()));
#if defined(__unix__) || defined(__APPLE__)
  struct utsname U;
  if (uname(&U) == 0) {
    Host.set("sysname", U.sysname);
    Host.set("release", U.release);
    Host.set("machine", U.machine);
  }
#endif
#ifdef LATTE_HAVE_OPENMP
  Host.set("openmp", true);
#else
  Host.set("openmp", false);
#endif
  return Host;
}

/// Accumulates a figure run into the BENCH_<fig>.json schema:
///
///   { "schema": "latte-bench-v1", "figure", "git_sha", "host",
///     "config": {scale, batch, reps}, "rows": [{label, fwd_sec, bwd_sec,
///     total_sec}], "compile_stages": [{name, sec}], "tasks": [{phase,
///     name, count, total_sec}], "counters": {phase: {...}} }
///
/// finish() attaches the profiler's aggregate (per-task execution spans +
/// counters) and writes the JSON and/or Chrome trace files requested in
/// BenchOptions.
class BenchReport {
public:
  BenchReport(std::string Figure, const BenchOptions &Opts)
      : Opts(Opts), Doc(json::Value::object()) {
    Doc.set("schema", "latte-bench-v1");
    Doc.set("figure", std::move(Figure));
    Doc.set("git_sha", gitSha());
    Doc.set("host", hostInfoJson());
    json::Value Config = json::Value::object();
    Config.set("scale", Opts.Scale);
    Config.set("batch", Opts.Batch);
    Config.set("reps", Opts.Reps);
    Doc.set("config", std::move(Config));
    Doc.set("rows", json::Value::array());
  }

  void addRow(const std::string &Label, const PassTimes &T) {
    json::Value Row = json::Value::object();
    Row.set("label", Label);
    Row.set("fwd_sec", T.FwdSec);
    Row.set("bwd_sec", T.BwdSec);
    Row.set("total_sec", T.total());
    // Memory columns (rows measured through the Latte executor only; the
    // baselines allocate per-layer blobs and report nothing here).
    if (T.EagerBytes > 0) {
      Row.set("arena_bytes", T.ArenaBytes);
      Row.set("eager_bytes", T.EagerBytes);
    }
    if (T.RecomputeFlops > 0) {
      Row.set("recompute_flops", T.RecomputeFlops);
      Row.set("retained_bytes_saved", T.RetainedBytesSaved);
    }
    Doc.find("rows")->push(std::move(Row));
  }

  /// Attaches an arbitrary top-level section (e.g. per-model compile
  /// reports: GEMM-match / fusion / interpreter counters). compare treats
  /// unknown sections as informational.
  void setExtra(const std::string &Key, json::Value V) {
    Doc.set(Key, std::move(V));
  }

  /// Per-pass compile times from compiler::compileStaged.
  void addCompileStages(const std::vector<compiler::PassStage> &Stages) {
    json::Value Arr = json::Value::array();
    for (const compiler::PassStage &S : Stages) {
      json::Value E = json::Value::object();
      E.set("name", S.Name);
      E.set("sec", S.CompileSec);
      Arr.push(std::move(E));
    }
    Doc.set("compile_stages", std::move(Arr));
  }

  /// Writes the requested output files. Returns false on I/O error (after
  /// printing a diagnostic); call once at the end of main.
  bool finish() {
    bool Ok = true;
    std::string Err;
    if (!Opts.JsonPath.empty()) {
      // Per-task execution spans and counters from the profiler.
      prof::Summary S = prof::Profiler::get().summary();
      json::Value Tasks = json::Value::array();
      for (const prof::SpanStat &St : S.Spans) {
        json::Value E = json::Value::object();
        E.set("phase", St.Phase);
        E.set("name", St.Name);
        E.set("count", St.Count);
        E.set("total_sec", St.TotalSec);
        Tasks.push(std::move(E));
      }
      Doc.set("tasks", std::move(Tasks));
      json::Value PhaseCounters = json::Value::object();
      for (const auto &PC : S.PhaseCounters)
        PhaseCounters.set(PC.first.empty() ? std::string("(none)")
                                           : PC.first,
                          prof::countersJson(PC.second));
      Doc.set("counters", std::move(PhaseCounters));
      Doc.set("totals", prof::countersJson(S.Totals));
      if (prof::writeJsonFile(Opts.JsonPath, Doc, &Err)) {
        std::printf("\nwrote %s\n", Opts.JsonPath.c_str());
      } else {
        std::fprintf(stderr, "%s\n", Err.c_str());
        Ok = false;
      }
    }
    if (!Opts.TracePath.empty()) {
      if (prof::writeChromeTrace(Opts.TracePath, &Err)) {
        std::printf("wrote %s (load in chrome://tracing or "
                    "https://ui.perfetto.dev)\n",
                    Opts.TracePath.c_str());
      } else {
        std::fprintf(stderr, "%s\n", Err.c_str());
        Ok = false;
      }
    }
    return Ok;
  }

private:
  BenchOptions Opts;
  json::Value Doc;
};

inline void fillRandom(Tensor &T, uint64_t Seed) {
  Rng R(Seed);
  R.fillGaussian(T, 0.0f, 1.0f);
}

/// Times Latte forward/backward for one batch (min over \p Reps). With
/// Opts.Jit set, the executor's constructor compiles and loads the shared
/// object before the timed region starts, so the reported times are
/// steady-state dispatch cost only; \p JitActiveOut (when non-null)
/// receives whether the module actually engaged (false = interpreter
/// fallback, e.g. no system compiler at runtime).
inline PassTimes timeLatte(const models::ModelSpec &Spec, int64_t Batch,
                           const compiler::CompileOptions &Opts, int Reps = 3,
                           bool *JitActiveOut = nullptr) {
  core::Net Net(Batch);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  engine::ExecOptions EO;
  EO.VectorKernels = Opts.VectorKernels;
  EO.Parallel = Opts.Parallelize;
  // When the harness was asked for --json/--trace output, record per-task
  // spans and counters during the timed reps (top-of-task granularity —
  // well under the noise floor of bestWallTime).
  EO.Profile = prof::enabled();
  engine::Executor Ex(compiler::compile(Net, Opts), EO);
  if (JitActiveOut)
    *JitActiveOut = Ex.jitActive();
  Ex.initParams(1);
  PassTimes T;
  if (const compiler::MemoryPlan &Plan = Ex.program().Plan; Plan.Valid) {
    T.ArenaBytes = static_cast<int64_t>(Plan.ArenaBytes);
    T.EagerBytes = static_cast<int64_t>(Plan.EagerBytes);
  }
  for (const compiler::RecomputeInfo &RI : Ex.program().Recomputes) {
    T.RecomputeFlops += RI.Flops;
    T.RetainedBytesSaved += RI.Bytes;
  }
  Tensor In(Spec.InputDims.withPrefix(Batch));
  fillRandom(In, 7);
  Ex.setInput(In);
  Tensor Labels(Shape{Batch, 1});
  for (int64_t I = 0; I < Batch; ++I)
    Labels.at(I) = static_cast<float>(I % Spec.NumClasses);
  Ex.setLabels(Labels);

  T.FwdSec = bestWallTime([&] { Ex.forward(); }, Reps);
  T.BwdSec = bestWallTime([&] { Ex.backward(); }, Reps);
  return T;
}

/// Times one of the baselines (Caffe when \p Naive is false, Mocha
/// otherwise).
inline PassTimes timeBaseline(const models::ModelSpec &Spec, int64_t Batch,
                              bool Naive, int Reps = 3) {
  caffe::CaffeNet Net(Batch);
  if (Naive)
    models::buildMocha(Net, Spec, /*WithLoss=*/true);
  else
    models::buildCaffe(Net, Spec, /*WithLoss=*/true);
  Net.setup(1);
  fillRandom(Net.inputBlob().Data, 7);
  for (int64_t I = 0; I < Batch; ++I)
    Net.labelBlob().Data.at(I) = static_cast<float>(I % Spec.NumClasses);

  PassTimes T;
  T.FwdSec = bestWallTime([&] { Net.forward(); }, Reps);
  T.BwdSec = bestWallTime([&] { Net.backward(); }, Reps);
  return T;
}

inline void printHeader(const std::string &Title,
                        const std::string &Workload) {
  std::printf("==========================================================\n");
  std::printf("%s\n", Title.c_str());
  std::printf("workload: %s\n", Workload.c_str());
  std::printf("==========================================================\n");
}

inline void printSpeedupRow(const std::string &Label, double BaselineSec,
                            double LatteSec, const std::string &PaperNote) {
  std::printf("%-28s %10.1f ms %10.1f ms  speedup %5.2fx   paper: %s\n",
              Label.c_str(), BaselineSec * 1e3, LatteSec * 1e3,
              BaselineSec / LatteSec, PaperNote.c_str());
}

/// One line of the memory-footprint table: planned arena vs what eager
/// one-buffer-per-root allocation would have used.
inline void printMemoryRow(const std::string &Label, const PassTimes &T) {
  if (T.EagerBytes <= 0) {
    std::printf("%-44s %12s\n", Label.c_str(), "n/a");
    return;
  }
  std::printf("%-44s %9.1f MB arena %9.1f MB eager  (saved %.1f%%)",
              Label.c_str(), double(T.ArenaBytes) / 1e6,
              double(T.EagerBytes) / 1e6, T.memSavedPct());
  if (T.RecomputeFlops > 0)
    std::printf("  [recompute: +%.2f Mflop, -%.1f MB retained]",
                double(T.RecomputeFlops) / 1e6,
                double(T.RetainedBytesSaved) / 1e6);
  std::printf("\n");
}

} // namespace bench
} // namespace latte

#endif // LATTE_BENCH_HARNESS_H
