//===- bench/seq_microbench.cpp - Sequence workloads -----------*- C++ -*-===//
///
/// Sequence-model microbenchmark in the style of the Figure 14/16 tables:
/// the graph-structured specs (time-unrolled shared-weight LSTM and GRU
/// classifiers, the single-head attention classifier) through the full
/// compile stack. The paper's evaluation is CNN-only; these rows track the
/// cost of the connection patterns its model admits but never measured —
/// tied-weight time-distributed GEMMs, dot-product scores, softmax over
/// keys — so regressions in the sequence path gate like the CNN figures.
///
/// Per model the harness reports forward/backward time and the planned
/// arena (deterministic, gated at 1.05x by bench/compare) for the full
/// stack and the no-cross-layer ablation, plus compile-report counters
/// (GEMM-matched / interpreted ensembles, fusion groups, tiled loops) in
/// the `compile_reports` section of `--json BENCH_seq.json`.
///
/// `--scale` shrinks T/F/H/D together; `--batch/--reps` as elsewhere.
///
//===----------------------------------------------------------------------===//

#include "harness.h"

#include <algorithm>

using namespace latte;
using namespace latte::bench;
using namespace latte::compiler;

namespace {

json::Value compileReportJson(const models::ModelSpec &Spec, int64_t Batch,
                              const CompileOptions &Opts) {
  core::Net Net(Batch);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  Program P = compile(Net, Opts);
  json::Value R = json::Value::object();
  R.set("gemm_matched",
        static_cast<int64_t>(P.Report.MatchedGemmEnsembles.size()));
  R.set("activation_matched",
        static_cast<int64_t>(P.Report.MatchedActivationEnsembles.size()));
  R.set("interpreted",
        static_cast<int64_t>(P.Report.InterpretedEnsembles.size()));
  int64_t Fused = 0;
  for (const auto &G : P.Report.FusionGroups)
    Fused += static_cast<int64_t>(G.size());
  R.set("fusion_groups", static_cast<int64_t>(P.Report.FusionGroups.size()));
  R.set("fused_ensembles", Fused);
  R.set("tiled_loops", static_cast<int64_t>(P.Report.NumTiledLoops));
  return R;
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions BO = parseBenchArgs(argc, argv, /*DefScale=*/1.0,
                                   /*DefBatch=*/4, /*DefReps=*/3);
  auto Dim = [&](int64_t Full, int64_t Min) {
    return std::max<int64_t>(Min, static_cast<int64_t>(Full * BO.Scale));
  };
  const int64_t T = Dim(8, 2), F = Dim(32, 4), H = Dim(32, 4), D = Dim(32, 4);
  const int64_t Classes = 10;

  struct Workload {
    const char *Tag;
    models::ModelSpec Spec;
  };
  const Workload Workloads[] = {
      {"lstm", models::lstmClassifier(T, F, H, Classes)},
      {"gru", models::gruClassifier(T, F, H, Classes)},
      {"attention", models::attentionClassifier(T, F, D, Classes)},
  };

  printHeader("Sequence microbenchmark: unrolled LSTM/GRU + attention",
              "T=" + std::to_string(T) + " F=" + std::to_string(F) +
                  " H=" + std::to_string(H) + " D=" + std::to_string(D) +
                  ", batch " + std::to_string(BO.Batch));

  CompileOptions Full; // the default full stack
  CompileOptions NoCross = Full;
  NoCross.Tiling = false;
  NoCross.Fusion = false;

  BenchReport R("seq", BO);
  json::Value Reports = json::Value::object();
  for (const Workload &W : Workloads) {
    PassTimes Base = timeLatte(W.Spec, BO.Batch, NoCross, BO.Reps);
    PassTimes Opt = timeLatte(W.Spec, BO.Batch, Full, BO.Reps);
    std::printf("\n-- %s (%s params) --\n", W.Tag,
                std::to_string(models::countParams(W.Spec)).c_str());
    std::printf("%-44s %10.2f ms fwd %10.2f ms bwd\n",
                "no cross-layer optimizations", Base.FwdSec * 1e3,
                Base.BwdSec * 1e3);
    std::printf("%-44s %10.2f ms fwd %10.2f ms bwd  (%.2fx fwd+bwd)\n",
                "full stack", Opt.FwdSec * 1e3, Opt.BwdSec * 1e3,
                Base.total() / Opt.total());
    printMemoryRow(std::string(W.Tag) + ", no cross-layer", Base);
    printMemoryRow(std::string(W.Tag) + ", full stack", Opt);

    R.addRow(std::string(W.Tag) + "_no_crosslayer", Base);
    R.addRow(std::string(W.Tag) + "_full", Opt);
    Reports.set(W.Tag, compileReportJson(W.Spec, BO.Batch, Full));
  }

  if (BO.profiling()) {
    R.setExtra("compile_reports", std::move(Reports));
    // Per-pass compile timing for the heaviest sequence graph (the LSTM:
    // most ensembles per parameter thanks to the unrolled gate chains).
    core::Net Net(BO.Batch);
    models::buildLatte(Net, Workloads[0].Spec, /*WithLoss=*/true);
    R.addCompileStages(compileStaged(Net, Full));
    if (!R.finish())
      return 1;
  }
  return 0;
}
