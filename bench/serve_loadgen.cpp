//===- bench/serve_loadgen.cpp - Serving-runtime traffic generator --------===//
///
/// Drives the inference serving runtime (src/serve) with the Figure 13
/// network and reports what the micro-batcher buys over sequential
/// single-request execution:
///
///   phase 0  cold start (--cold) — the ProgramCache is cleared before the
///            server is built, so only the floor class is warm; requests
///            submitted immediately must be served through the degradation
///            ladder (padded/chunked/interpreted), never blocked on an
///            inline compile, while background threads install the rest
///   phase 1  sequential baseline — one batch-1 inference executor in a
///            tight loop (what a server without batching would do)
///   phase 2  saturation — a sliding window of in-flight requests keeps
///            the queue full, measuring peak requests/sec through the
///            batcher + replicas
///   phase 3  latency — open-loop arrivals at a fraction of the measured
///            peak, recording per-request p50/p99 queueing+compute
///            latency; with --mixed the arrivals cycle through the
///            Interactive/Standard/Bulk priority classes with
///            machine-scaled deadlines
///
///   serve_loadgen [--scale S] [--replicas N] [--batch-sizes 1,4,16]
///                 [--deadline-us U] [--duration SEC] [--rate-frac F]
///                 [--jit] [--cold] [--mixed] [--json OUT.json]
///                 [--trace OUT.json] [--check-speedup X]
///                 [--check-cold] [--check-deadline-misses N]
///
/// `--json` emits BENCH_serve.json (schema latte-bench-v1, figure
/// "serve"): a gated `speedup` column on the serve_throughput row (served
/// rps / sequential rps — machine-normalized, both sides measured on this
/// host in this run), a gated `latency_norm` column on the serve_p50 row
/// (p50 seconds x sequential rps — the p50 expressed as a multiple of the
/// host's own single-request service time, so it compares across
/// machines), informational p99, the inference arena row, and a "serve"
/// object with the batch-fill histogram plus the shed/fallback counters.
///
/// CI floors: `--check-speedup X` fails when the measured speedup is below
/// X; `--check-cold` fails when the cold phase could not serve a request
/// before the last shape class installed (i.e., something blocked on a
/// compile); `--check-deadline-misses N` fails when more than N requests
/// missed or shed their deadline *after* warmup (the serve-soak gate runs
/// it with N=0).
///
/// The speedup is core-count-dependent: batch-16 forwards parallelize all
/// per-item work across OpenMP threads while batch-1 parallelizes only
/// tiled loops, so multi-core hosts see the batching win and a 1-core host
/// measures ~1x. EXPERIMENTS.md discusses the methodology.
///
//===----------------------------------------------------------------------===//

#include "harness.h"
#include "serve/server.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

using namespace latte;
using namespace latte::bench;

namespace {

struct LoadgenOptions {
  double Scale = 0.25;
  int Replicas = 2;
  std::vector<int64_t> BatchSizes = {1, 4, 16};
  int64_t DeadlineUs = 2000;
  double DurationSec = 2.0;
  double RateFrac = 0.6;
  bool Jit = false;
  bool Cold = false;
  bool Mixed = false;
  std::string JsonPath;
  std::string TracePath;
  double CheckSpeedup = 0.0;
  bool CheckCold = false;
  int64_t CheckDeadlineMisses = -1; ///< -1 = disabled
};

LoadgenOptions parseArgs(int Argc, char **Argv) {
  LoadgenOptions O;
  auto NeedValue = [&](int I) {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "missing value for %s\n", Argv[I]);
      std::exit(2);
    }
    return Argv[I + 1];
  };
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--scale") == 0)
      O.Scale = std::atof(NeedValue(I++));
    else if (std::strcmp(Argv[I], "--replicas") == 0)
      O.Replicas = std::atoi(NeedValue(I++));
    else if (std::strcmp(Argv[I], "--batch-sizes") == 0) {
      O.BatchSizes.clear();
      std::string List = NeedValue(I++);
      size_t Pos = 0;
      while (Pos <= List.size()) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        if (Comma > Pos)
          O.BatchSizes.push_back(std::atoll(List.substr(Pos).c_str()));
        Pos = Comma + 1;
      }
    } else if (std::strcmp(Argv[I], "--deadline-us") == 0)
      O.DeadlineUs = std::atoll(NeedValue(I++));
    else if (std::strcmp(Argv[I], "--duration") == 0)
      O.DurationSec = std::atof(NeedValue(I++));
    else if (std::strcmp(Argv[I], "--rate-frac") == 0)
      O.RateFrac = std::atof(NeedValue(I++));
    else if (std::strcmp(Argv[I], "--jit") == 0)
      O.Jit = true;
    else if (std::strcmp(Argv[I], "--cold") == 0)
      O.Cold = true;
    else if (std::strcmp(Argv[I], "--mixed") == 0)
      O.Mixed = true;
    else if (std::strcmp(Argv[I], "--json") == 0)
      O.JsonPath = NeedValue(I++);
    else if (std::strcmp(Argv[I], "--trace") == 0)
      O.TracePath = NeedValue(I++);
    else if (std::strcmp(Argv[I], "--check-speedup") == 0)
      O.CheckSpeedup = std::atof(NeedValue(I++));
    else if (std::strcmp(Argv[I], "--check-cold") == 0)
      O.CheckCold = true;
    else if (std::strcmp(Argv[I], "--check-deadline-misses") == 0)
      O.CheckDeadlineMisses = std::atoll(NeedValue(I++));
    else if (std::strcmp(Argv[I], "--help") == 0) {
      std::printf("usage: serve_loadgen [--scale S] [--replicas N] "
                  "[--batch-sizes 1,4,16] [--deadline-us U] "
                  "[--duration SEC] [--rate-frac F] [--jit] [--cold] "
                  "[--mixed] [--json out.json] [--trace out.json] "
                  "[--check-speedup X] [--check-cold] "
                  "[--check-deadline-misses N]\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument '%s' (see --help)\n", Argv[I]);
      std::exit(2);
    }
  }
  if (O.Scale <= 0 || O.Replicas <= 0 || O.BatchSizes.empty() ||
      O.DurationSec <= 0 || O.RateFrac <= 0 || O.RateFrac > 1) {
    std::fprintf(stderr, "bad argument values (see --help)\n");
    std::exit(2);
  }
  if (O.CheckCold && !O.Cold) {
    std::fprintf(stderr, "--check-cold requires --cold\n");
    std::exit(2);
  }
  if (!O.JsonPath.empty() || !O.TracePath.empty())
    prof::Profiler::get().setEnabled(true);
  return O;
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t I = static_cast<size_t>(P * static_cast<double>(Sorted.size() - 1));
  return Sorted[I];
}

} // namespace

int main(int argc, char **argv) {
  LoadgenOptions O = parseArgs(argc, argv);
  const uint64_t ParamSeed = 1;

  models::ModelSpec Spec = models::vggFirstThreeLayers(O.Scale);
  compiler::CompileOptions CO;
  CO.Jit = O.Jit;

  printHeader("serve_loadgen: latency-bounded inference serving",
              Spec.Name + " scale " + std::to_string(O.Scale));

  // A small pool of distinct inputs so consecutive requests are not
  // byte-identical (defeats nothing, but keeps the traffic honest).
  std::vector<Tensor> Pool;
  for (uint64_t S = 0; S < 16; ++S) {
    Tensor T(Spec.InputDims);
    fillRandom(T, 100 + S);
    Pool.push_back(std::move(T));
  }

  // --- the server (before any other compile: cold means cold) ------------
  if (O.Cold)
    serve::ProgramCache::instance().clear();
  serve::ServeOptions SO;
  SO.Replicas = O.Replicas;
  SO.BatchSizes = O.BatchSizes;
  SO.FlushDeadlineMicros = O.DeadlineUs;
  SO.ParamSeed = ParamSeed;
  SO.Exec.Seed = ParamSeed;
  SO.Exec.Profile = prof::enabled();
  Timer BuildWall;
  serve::Server Srv(Spec, CO, SO);
  double BuildSec = BuildWall.seconds();
  Srv.start();

  // --- phase 0: cold start through the degradation ladder ----------------
  double ColdFirstRespSec = 0.0;
  int64_t ColdRequests = 0, ColdFallbackBatches = 0;
  if (O.Cold) {
    std::printf("cold start:          floor ready in %.0f ms, serving while "
                "%zu classes compile\n",
                BuildSec * 1e3, Srv.batchSizes().size() - 1);
    serve::SubmitOptions Bulk;
    Bulk.Pri = serve::Priority::Bulk;
    constexpr int ColdN = 32;
    std::vector<std::future<serve::Response>> Futs(ColdN);
    Timer ColdWall;
    for (int I = 0; I < ColdN; ++I) {
      if (!Srv.submit(Pool[static_cast<size_t>(I) % Pool.size()], &Futs[I],
                      Bulk)) {
        std::fprintf(stderr, "serve_loadgen: cold submit %d was shed\n", I);
        return 1;
      }
      // Clock the first response the moment it lands (wait() does not
      // consume the future) — measuring it after the pacing loop would
      // hide a fast background compile behind 31 ms of sleeps and make
      // the --check-cold comparison against all_ready_sec meaningless.
      if (I == 0) {
        Futs[0].wait();
        ColdFirstRespSec = ColdWall.seconds();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (int I = 0; I < ColdN; ++I) {
      serve::Response R = Futs[I].get();
      if (R.St != serve::Status::Ok) {
        std::fprintf(stderr, "serve_loadgen: cold request %d failed\n", I);
        return 1;
      }
    }
    ColdRequests = ColdN;
    serve::ServeStats ColdSt = Srv.stats();
    ColdFallbackBatches = ColdSt.InterpFallbacks + ColdSt.ChunkedBatches;
    std::printf("cold start:          first response %.1f ms, %lld fallback "
                "batches (interp %lld, chunked %lld)\n",
                ColdFirstRespSec * 1e3,
                static_cast<long long>(ColdFallbackBatches),
                static_cast<long long>(ColdSt.InterpFallbacks),
                static_cast<long long>(ColdSt.ChunkedBatches));
  }

  // Everything below measures the warm steady state.
  double WarmupBudget = std::max(120.0, 10 * O.DurationSec);
  if (!Srv.waitAllClassesReady(std::chrono::milliseconds(
          static_cast<int64_t>(WarmupBudget * 1e3)))) {
    std::fprintf(stderr,
                 "serve_loadgen: shape classes still cold after %.0fs\n",
                 WarmupBudget);
    return 1;
  }
  if (O.Cold)
    std::printf("cold start:          all %zu classes ready in %.2f s\n",
                Srv.batchSizes().size(), Srv.allReadySec());

  // --- phase 1: sequential single-request baseline -----------------------
  compiler::CompileOptions InferCO = CO;
  InferCO.Inference = true;
  engine::ExecOptions SeqEO;
  SeqEO.Seed = ParamSeed;
  engine::Executor Seq(
      serve::ProgramCache::instance().getOrCompile(Spec, InferCO, 1)->clone(),
      SeqEO);
  Seq.setInput(Pool[0]);
  Seq.forward(); // warmup (JIT load, lazy zero schedule)
  int64_t SeqIters = 0;
  Timer SeqWall;
  while (SeqWall.seconds() < O.DurationSec) {
    Seq.setInput(Pool[static_cast<size_t>(SeqIters) % Pool.size()]);
    Seq.forward();
    ++SeqIters;
  }
  double SeqRps = static_cast<double>(SeqIters) / SeqWall.seconds();
  std::printf("sequential baseline: %6.1f req/s (batch 1, %lld reqs)\n",
              SeqRps, static_cast<long long>(SeqIters));

  // Correctness smoke: a served row must match the sequential executor's
  // forward on the same item and the same weights, bitwise.
  {
    std::future<serve::Response> F;
    if (!Srv.submit(Pool[0], &F)) {
      std::fprintf(stderr, "serve_loadgen: smoke submit was shed\n");
      return 1;
    }
    serve::Response Resp = F.get();
    Seq.setInput(Pool[0]);
    Seq.forward();
    Tensor Ref = Seq.readBuffer(Seq.program().ProbBuffer);
    if (Resp.St != serve::Status::Ok ||
        Resp.Output.numElements() != Ref.numElements() ||
        std::memcmp(Resp.Output.data(), Ref.data(),
                    sizeof(float) * static_cast<size_t>(Ref.numElements())) !=
            0) {
      std::fprintf(stderr,
                   "serve_loadgen: served output differs from sequential "
                   "forward (weight sharing or padding is broken)\n");
      return 1;
    }
  }

  // Post-warmup baseline for the deadline-miss gate: cold-phase and
  // warmup traffic does not count against it.
  serve::ServeStats WarmBase = Srv.stats();

  // --- phase 2: saturation throughput ------------------------------------
  // Bulk priority: saturation deliberately builds queues, which is what
  // the generous Bulk deadline budget is for.
  serve::SubmitOptions SatSub;
  SatSub.Pri = serve::Priority::Bulk;
  const size_t Window = 4 * static_cast<size_t>(Srv.maxBatch());
  std::deque<std::future<serve::Response>> Outstanding;
  int64_t Done = 0, Next = 0;
  Timer Wall;
  while (Wall.seconds() < O.DurationSec) {
    while (Outstanding.size() < Window) {
      std::future<serve::Response> F;
      if (!Srv.submit(Pool[static_cast<size_t>(Next++) % Pool.size()], &F,
                      SatSub))
        break; // shed: drain before retrying
      Outstanding.push_back(std::move(F));
    }
    if (!Outstanding.empty()) {
      Outstanding.front().get();
      Outstanding.pop_front();
      ++Done;
    }
  }
  while (!Outstanding.empty()) {
    Outstanding.front().get();
    Outstanding.pop_front();
    ++Done;
  }
  double ServeRps = static_cast<double>(Done) / Wall.seconds();
  double Speedup = SeqRps > 0 ? ServeRps / SeqRps : 0;
  std::printf("saturated serving:   %6.1f req/s (window %zu, %lld reqs)  "
              "speedup %.2fx\n",
              ServeRps, Window, static_cast<long long>(Done), Speedup);

  // --- phase 3: open-loop latency at a fraction of peak ------------------
  // Deadline budgets scale with the host's own service time so the soak
  // gate measures scheduling, not machine speed: an Interactive request
  // gets ~2 full max-batch runs of slack, Standard 4x, Bulk 40x.
  double ItemSec = SeqRps > 0 ? 1.0 / SeqRps : 0.01;
  const int64_t IntUs = std::max<int64_t>(
      100'000, static_cast<int64_t>(2e6 * ItemSec *
                                    static_cast<double>(Srv.maxBatch())));
  const serve::SubmitOptions ClassSub[3] = {
      {serve::Priority::Interactive, IntUs},
      {serve::Priority::Standard, 4 * IntUs},
      {serve::Priority::Bulk, 40 * IntUs},
  };
  // Interactive 25% / Standard 50% / Bulk 25% when --mixed; all Standard
  // otherwise.
  const int MixPattern[4] = {0, 1, 1, 2};
  double Rate = std::max(1.0, O.RateFrac * ServeRps);
  auto Interval = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / Rate));
  struct Pending {
    std::chrono::steady_clock::time_point Submit;
    int Class = 1;
    std::future<serve::Response> Fut;
  };
  std::mutex Mu;
  std::condition_variable Cv;
  std::deque<Pending> Queue;
  bool ProducerDone = false;
  std::vector<double> Lats, ClassLats[3];
  int64_t LatFailed = 0;
  std::thread Collector([&] {
    for (;;) {
      Pending P;
      {
        std::unique_lock<std::mutex> Lock(Mu);
        Cv.wait(Lock, [&] { return !Queue.empty() || ProducerDone; });
        if (Queue.empty())
          return;
        P = std::move(Queue.front());
        Queue.pop_front();
      }
      serve::Response R = P.Fut.get();
      double Sec = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - P.Submit)
                       .count();
      if (R.St == serve::Status::Ok) {
        Lats.push_back(Sec);
        ClassLats[P.Class].push_back(Sec);
      } else {
        ++LatFailed;
      }
    }
  });
  Timer LatWall;
  auto NextArrival = std::chrono::steady_clock::now();
  int64_t LatShed = 0, Seq3 = 0;
  while (LatWall.seconds() < O.DurationSec) {
    std::this_thread::sleep_until(NextArrival);
    NextArrival += Interval; // open loop: the schedule never slips
    Pending P;
    P.Class = O.Mixed ? MixPattern[Seq3 % 4] : 1;
    ++Seq3;
    P.Submit = std::chrono::steady_clock::now();
    if (!Srv.submit(Pool[static_cast<size_t>(Next++) % Pool.size()], &P.Fut,
                    ClassSub[P.Class])) {
      ++LatShed;
      continue;
    }
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Queue.push_back(std::move(P));
    }
    Cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ProducerDone = true;
  }
  Cv.notify_all();
  Collector.join();
  serve::ServeStats St = Srv.stats(); // final snapshot before stop()
  Srv.stop();

  std::sort(Lats.begin(), Lats.end());
  double P50 = percentile(Lats, 0.50), P99 = percentile(Lats, 0.99);
  double LatencyNorm = P50 * SeqRps;
  std::printf("open-loop latency:   %6.1f req/s offered, p50 %.2f ms, "
              "p99 %.2f ms (%zu reqs, %lld shed)\n",
              Rate, P50 * 1e3, P99 * 1e3, Lats.size(),
              static_cast<long long>(LatShed));
  if (O.Mixed) {
    const char *Names[3] = {"interactive", "standard", "bulk"};
    for (int C = 0; C < 3; ++C) {
      std::sort(ClassLats[C].begin(), ClassLats[C].end());
      std::printf("  %-12s %5zu reqs, p50 %.2f ms (deadline %lld ms)\n",
                  Names[C], ClassLats[C].size(),
                  percentile(ClassLats[C], 0.50) * 1e3,
                  static_cast<long long>(ClassSub[C].DeadlineMicros / 1000));
    }
  }

  // --- report -------------------------------------------------------------
  const int64_t PostWarmMisses = (St.DeadlineMissed - WarmBase.DeadlineMissed) +
                                 (St.DeadlineShed - WarmBase.DeadlineShed);
  const compiler::MemoryPlan &InferPlan = Srv.program(Srv.maxBatch()).Plan;
  // Training compile of the same net at the same batch size, for the arena
  // comparison the serving mode exists to win.
  core::Net TrainNet(Srv.maxBatch());
  models::buildLatte(TrainNet, Spec, /*WithLoss=*/true);
  compiler::Program TrainProg = compiler::compile(TrainNet, CO);
  std::printf("inference arena:     %.1f MB (training arena at batch %lld: "
              "%.1f MB)\n",
              double(InferPlan.ArenaBytes) / 1e6,
              static_cast<long long>(Srv.maxBatch()),
              double(TrainProg.Plan.ArenaBytes) / 1e6);
  std::printf("batches: %lld (padded slots %lld, full flushes %lld, "
              "deadline flushes %lld)\n",
              static_cast<long long>(St.Batches),
              static_cast<long long>(St.PaddedSlots),
              static_cast<long long>(St.FullFlushes),
              static_cast<long long>(St.DeadlineFlushes));
  std::printf("degradation: shed %lld, deadline-shed %lld, deadline-missed "
              "%lld (post-warmup %lld), interp fallbacks %lld, chunked "
              "%lld, classes installed %lld\n",
              static_cast<long long>(St.Shed),
              static_cast<long long>(St.DeadlineShed),
              static_cast<long long>(St.DeadlineMissed),
              static_cast<long long>(PostWarmMisses),
              static_cast<long long>(St.InterpFallbacks),
              static_cast<long long>(St.ChunkedBatches),
              static_cast<long long>(St.ClassesInstalled));

  if (!O.JsonPath.empty()) {
    json::Value Doc = json::Value::object();
    Doc.set("schema", "latte-bench-v1");
    Doc.set("figure", "serve");
    Doc.set("git_sha", gitSha());
    Doc.set("host", hostInfoJson());
    json::Value Config = json::Value::object();
    Config.set("scale", O.Scale);
    Config.set("replicas", O.Replicas);
    json::Value Sizes = json::Value::array();
    for (int64_t BS : Srv.batchSizes())
      Sizes.push(BS);
    Config.set("batch_sizes", std::move(Sizes));
    Config.set("deadline_us", O.DeadlineUs);
    Config.set("duration_sec", O.DurationSec);
    Config.set("rate_frac", O.RateFrac);
    Config.set("jit", O.Jit);
    Config.set("cold", O.Cold);
    Config.set("mixed", O.Mixed);
    Doc.set("config", std::move(Config));

    json::Value Rows = json::Value::array();
    auto Row = [&](const std::string &Label) {
      json::Value R = json::Value::object();
      R.set("label", Label);
      return R;
    };
    json::Value SeqRow = Row("seq_batch1");
    SeqRow.set("total_sec", SeqRps > 0 ? 1.0 / SeqRps : 0.0);
    SeqRow.set("rps", SeqRps);
    Rows.push(std::move(SeqRow));
    json::Value ThrRow = Row("serve_throughput");
    ThrRow.set("total_sec", ServeRps > 0 ? 1.0 / ServeRps : 0.0);
    ThrRow.set("rps", ServeRps);
    ThrRow.set("speedup", Speedup);
    Rows.push(std::move(ThrRow));
    json::Value P50Row = Row("serve_p50");
    P50Row.set("total_sec", P50);
    P50Row.set("latency_norm", LatencyNorm);
    Rows.push(std::move(P50Row));
    json::Value P99Row = Row("serve_p99");
    P99Row.set("total_sec", P99);
    Rows.push(std::move(P99Row));
    json::Value ArenaRow = Row("serve_arena");
    ArenaRow.set("arena_bytes", InferPlan.ArenaBytes);
    ArenaRow.set("eager_bytes", InferPlan.EagerBytes);
    Rows.push(std::move(ArenaRow));
    Doc.set("rows", std::move(Rows));

    json::Value Serve = json::Value::object();
    Serve.set("seq_rps", SeqRps);
    Serve.set("serve_rps", ServeRps);
    Serve.set("speedup", Speedup);
    Serve.set("p50_sec", P50);
    Serve.set("p99_sec", P99);
    Serve.set("latency_norm", LatencyNorm);
    Serve.set("infer_arena_bytes", InferPlan.ArenaBytes);
    Serve.set("train_arena_bytes", TrainProg.Plan.ArenaBytes);
    Serve.set("batches", St.Batches);
    Serve.set("completed", St.Completed);
    Serve.set("padded_slots", St.PaddedSlots);
    Serve.set("shed", St.Shed);
    Serve.set("deadline_shed", St.DeadlineShed);
    Serve.set("deadline_missed", St.DeadlineMissed);
    Serve.set("post_warmup_misses", PostWarmMisses);
    Serve.set("interp_fallbacks", St.InterpFallbacks);
    Serve.set("chunked_batches", St.ChunkedBatches);
    Serve.set("classes_installed", St.ClassesInstalled);
    Serve.set("all_ready_sec", Srv.allReadySec());
    Serve.set("full_flushes", St.FullFlushes);
    Serve.set("deadline_flushes", St.DeadlineFlushes);
    Serve.set("busy_sec", St.BusySec);
    if (O.Cold) {
      json::Value ColdObj = json::Value::object();
      ColdObj.set("requests", ColdRequests);
      ColdObj.set("first_response_sec", ColdFirstRespSec);
      ColdObj.set("fallback_batches", ColdFallbackBatches);
      Serve.set("cold", std::move(ColdObj));
    }
    json::Value Fill = json::Value::object();
    for (const auto &[BS, Hist] : St.Fill) {
      json::Value H = json::Value::object();
      for (const auto &[F, N] : Hist)
        H.set(std::to_string(F), N);
      Fill.set(std::to_string(BS), std::move(H));
    }
    Serve.set("batch_fill", std::move(Fill));
    Doc.set("serve", std::move(Serve));

    std::string Err;
    if (prof::writeJsonFile(O.JsonPath, Doc, &Err))
      std::printf("wrote %s\n", O.JsonPath.c_str());
    else {
      std::fprintf(stderr, "%s\n", Err.c_str());
      return 1;
    }
  }
  if (!O.TracePath.empty()) {
    std::string Err;
    if (prof::writeChromeTrace(O.TracePath, &Err))
      std::printf("wrote %s (load in chrome://tracing)\n",
                  O.TracePath.c_str());
    else {
      std::fprintf(stderr, "%s\n", Err.c_str());
      return 1;
    }
  }

  int Rc = 0;
  if (O.CheckSpeedup > 0 && Speedup < O.CheckSpeedup) {
    std::fprintf(stderr,
                 "serve_loadgen: speedup %.2fx is below the required "
                 "%.2fx floor\n",
                 Speedup, O.CheckSpeedup);
    Rc = 1;
  }
  if (O.CheckCold) {
    // The cold phase must prove requests were *served* while classes were
    // still compiling: either a fallback batch ran, or the first response
    // landed before the last class installed. If neither, something
    // serialized requests behind a compile.
    bool ServedEarly =
        ColdFallbackBatches > 0 || ColdFirstRespSec < Srv.allReadySec();
    if (!ServedEarly) {
      std::fprintf(stderr,
                   "serve_loadgen: cold phase served nothing before the "
                   "last class installed (first response %.3fs, all ready "
                   "%.3fs, fallback batches %lld)\n",
                   ColdFirstRespSec, Srv.allReadySec(),
                   static_cast<long long>(ColdFallbackBatches));
      Rc = 1;
    }
  }
  if (O.CheckDeadlineMisses >= 0 && PostWarmMisses > O.CheckDeadlineMisses) {
    std::fprintf(stderr,
                 "serve_loadgen: %lld post-warmup deadline misses/sheds "
                 "exceed the allowed %lld\n",
                 static_cast<long long>(PostWarmMisses),
                 static_cast<long long>(O.CheckDeadlineMisses));
    Rc = 1;
  }
  return Rc;
}
